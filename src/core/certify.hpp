#pragma once
// Independent certification of RFN verdicts.
//
// A verifier that is itself buggy is worse than none, so both verdict kinds
// can be re-checked through deliberately simple, separate code paths:
//   * Fails  — the error trace is replayed with plain 3-valued simulation
//              from the design's initial state; the property signal must
//              evaluate to a definite 1 at the final cycle.
//   * Holds  — the final abstract model's reachable set is recomputed and
//              checked to be an inductive invariant that excludes the bad
//              states: init implies Inv, post(Inv) implies Inv, and
//              Inv & bad == false. Because the abstraction over-approximates
//              the design (pseudo-inputs are free), such an invariant on the
//              abstraction certifies the property on the original design.

#include "core/rfn.hpp"
#include "netlist/netlist.hpp"

namespace rfn {

struct CertifyResult {
  bool ok = false;
  std::string detail;  // diagnostic on failure
};

/// Replays `trace` on `m` (inputs from the trace's input cubes; X-init
/// registers take the trace's cycle-1 values) and checks `bad` rises.
CertifyResult certify_error_trace(const Netlist& m, const Trace& trace, GateId bad);

/// Recomputes the fixpoint on the abstraction over `included_regs` and
/// checks the inductive-invariant conditions. `included_regs` is typically
/// RfnVerifier::abstract_registers() after a Holds verdict.
CertifyResult certify_holds(const Netlist& m, GateId bad,
                            const std::vector<GateId>& included_regs,
                            const ReachOptions& opt = {});

/// Certifies an RfnResult end-to-end (dispatches on the verdict; Unknown is
/// never certifiable).
CertifyResult certify(const Netlist& m, GateId bad, const RfnResult& result,
                      const std::vector<GateId>& included_regs);

}  // namespace rfn
