#pragma once
// The BDD-ATPG hybrid engine for finding error traces on the abstract model
// (paper Section 2.2).
//
// Abstract models routinely have thousands of primary inputs (cut register
// outputs), which kills BDD pre-image on the model itself. The hybrid
// engine instead:
//   1. computes the min-cut design MC of the abstract model N (fewest
//      primary inputs);
//   2. walks the onion rings backward, pre-imaging the current target cube
//      on MC only;
//   3. classifies each candidate cube of the result: a *no-cut cube*
//      (registers and primary inputs of N only) extends the trace directly;
//      a *min-cut cube* (mentions MC inputs that are internal signals of N)
//      is handed to combinational ATPG on N, which justifies the internal
//      values back to an assignment of N's registers and inputs.
// The state part of the accepted cube becomes the next pre-image target.

#include "atpg/comb_atpg.hpp"
#include "mc/reach.hpp"
#include "mc/trace.hpp"
#include "mincut/mincut.hpp"

namespace rfn {

struct HybridTraceOptions {
  /// How many cubes of each pre-image result to try before giving up.
  size_t cube_limit = 64;
  AtpgOptions atpg;
  /// Cooperative should-stop hook, polled per backward pre-image step; a
  /// cancelled walk returns an empty trace. (The embedded AtpgOptions carry
  /// their own hook for the justification calls.)
  const CancelToken* cancel = nullptr;
};

struct HybridTraceStats {
  size_t mc_inputs = 0;       // primary inputs of the min-cut design
  size_t model_inputs = 0;    // primary inputs of the abstract model
  size_t cone_inputs = 0;     // inputs in the registers' fanin cone
  size_t nocut_cubes = 0;     // cubes accepted without ATPG
  size_t mincut_cubes = 0;    // cubes routed through combinational ATPG
  size_t atpg_calls = 0;
  size_t atpg_rejects = 0;    // candidate cubes ATPG refuted / aborted
};

/// Extracts an error trace on abstract model `n` from a BadReachable
/// reachability result, using min-cut pre-image + ATPG justification.
/// `enc` must be the encoder the rings were computed with. Returns an empty
/// trace if every candidate cube is exhausted (should not happen: the paper
/// argues a consistent no-cut cube always exists).
Trace hybrid_error_trace(Encoder& enc, const Netlist& n, const ReachResult& reach,
                         const Bdd& bad, const HybridTraceOptions& opt = {},
                         HybridTraceStats* stats = nullptr);

/// Extracts up to `count` *distinct* abstract error traces by starting the
/// backward walk from different cubes of the bad intersection (the paper's
/// second future-work direction: "guiding ATPG with a set of error traces
/// rather than a single error trace"). The first returned trace equals
/// hybrid_error_trace's.
std::vector<Trace> hybrid_error_traces(Encoder& enc, const Netlist& n,
                                       const ReachResult& reach, const Bdd& bad,
                                       size_t count,
                                       const HybridTraceOptions& opt = {},
                                       HybridTraceStats* stats = nullptr);

}  // namespace rfn
