#pragma once
// One home for the tool's verdict/status vocabulary.
//
// Three engine layers each report a small closed outcome enum — the CEGAR
// loop's Verdict, BDD reachability's ReachStatus, and ATPG's AtpgStatus —
// and every consumer (trace_json, the CLI engine table, log lines, the
// bench tables) needs the same canonical spelling. The names used to be
// hand-rolled in three .cpp files; they live here as `to_string` overloads
// so a renamed state cannot drift between the JSON schema and the console.
//
// The strings are part of the rfn-trace-v1/v2 schemas and of the bench
// tables quoted in EXPERIMENTS.md; changing one is a schema change.

#include "atpg/comb_atpg.hpp"
#include "mc/reach.hpp"

namespace rfn {

/// Final outcome of a property run (the CEGAR loop / a session property).
enum class Verdict { Holds, Fails, Unknown, ResourceOut };

constexpr const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::Holds: return "T";
    case Verdict::Fails: return "F";
    case Verdict::Unknown: return "?";
    case Verdict::ResourceOut: return "resource-out";
  }
  return "?";
}

constexpr const char* to_string(ReachStatus s) {
  switch (s) {
    case ReachStatus::Proved: return "proved";
    case ReachStatus::BadReachable: return "bad-reachable";
    case ReachStatus::ResourceOut: return "resource-out";
  }
  return "?";
}

constexpr const char* to_string(AtpgStatus s) {
  switch (s) {
    case AtpgStatus::Sat: return "sat";
    case AtpgStatus::Unsat: return "unsat";
    case AtpgStatus::Abort: return "abort";
  }
  return "?";
}

}  // namespace rfn
