#pragma once
// BFS abstraction baseline for coverage analysis (Ho et al. [8], compared
// against RFN in Table 2).
//
// The BFS method is purely topological: take the k registers closest (in
// register-BFS distance) to the coverage signals, build the subcircuit over
// them, run one forward fixpoint, project to the coverage signals, and
// report everything outside the projection as unreachable.

#include <vector>

#include "mc/reach.hpp"
#include "netlist/netlist.hpp"

namespace rfn {

struct BfsBaselineOptions {
  /// Abstract-model size (paper: 60 registers, "forward fixpoint almost
  /// always completes on an abstract model with 60 registers").
  size_t num_registers = 60;
  ReachOptions reach;
  bool dynamic_reordering = true;
};

struct BfsBaselineResult {
  size_t total_states = 0;
  size_t unreachable = 0;
  size_t abstract_regs = 0;
  ReachStatus reach_status = ReachStatus::ResourceOut;
  double seconds = 0.0;
};

BfsBaselineResult bfs_coverage_analysis(const Netlist& m,
                                        const std::vector<GateId>& coverage_regs,
                                        const BfsBaselineOptions& opt = {});

}  // namespace rfn
