#include "core/session.hpp"

#include <algorithm>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_set>

#include "atpg/seq_atpg.hpp"
#include "bdd/bdd.hpp"
#include "core/concretize.hpp"
#include "core/portfolio.hpp"
#include "core/refine.hpp"
#include "mc/approx_reach.hpp"
#include "mc/image.hpp"
#include "netlist/analysis.hpp"
#include "pdr/pdr.hpp"
#include "sim/sim3.hpp"
#include "util/executor.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/prof.hpp"
#include "util/stopwatch.hpp"
#include "util/trace.hpp"
#include "util/watchdog.hpp"

namespace rfn {

// ---------------------------------------------------------------------------
// SubcircuitMemo

std::shared_ptr<const Subcircuit> SubcircuitMemo::get(
    const Netlist& m, const std::vector<GateId>& roots,
    const std::vector<GateId>& included) {
  std::string key;
  key.reserve((roots.size() + included.size() + 1) * sizeof(GateId));
  const auto push_ids = [&key](const std::vector<GateId>& ids) {
    key.append(reinterpret_cast<const char*>(ids.data()),
               ids.size() * sizeof(GateId));
  };
  push_ids(roots);
  key.push_back('\0');  // sizeof(GateId) has no 1-byte representation: safe separator
  push_ids(included);

  MetricsRegistry& reg = MetricsRegistry::global();
  const auto it = map_.find(key);
  if (it != map_.end()) {
    ++hits_;
    reg.counter("session.subcircuit_memo.hits").add(1);
    return it->second;
  }
  ++misses_;
  reg.counter("session.subcircuit_memo.misses").add(1);
  // Bound the cache: a long refinement run visits a fresh register set every
  // iteration and would otherwise retain every abstract model it ever built.
  // Dropping everything is crude but keeps the memo O(1)-bounded while still
  // serving the cross-property case (repeated identical extractions land
  // well under the cap).
  if (map_.size() >= 16) map_.clear();
  auto sub = std::make_shared<Subcircuit>(extract_abstract_model(m, roots, included));
  map_.emplace(std::move(key), sub);
  return sub;
}

int64_t SubcircuitMemo::approx_bytes() const {
  // Structural estimate: each memoized Subcircuit owns a netlist copy plus
  // two id maps sized by the ORIGINAL design. A nominal per-gate footprint
  // (gate record + fanin vector) over both keeps the figure monotone in the
  // cached volume, which is all the warm-state byte budget needs.
  constexpr int64_t kPerGate = 48;
  int64_t total = 0;
  for (const auto& [key, sub] : map_) {
    total += static_cast<int64_t>(key.size());
    total += static_cast<int64_t>(sub->net.size()) * kPerGate;
    total += static_cast<int64_t>(sub->old_of_new.size()) * sizeof(GateId) * 2;
  }
  return total;
}

// ---------------------------------------------------------------------------
// SatBmcPool

SatBmc& SatBmcPool::get(const Netlist& m) {
  MetricsRegistry& reg = MetricsRegistry::global();
  const auto it = map_.find(&m);
  if (it != map_.end()) {
    reg.counter("session.sat_pool.hits").add(1);
    return *it->second;
  }
  reg.counter("session.sat_pool.misses").add(1);
  return *map_.emplace(&m, std::make_unique<SatBmc>(m)).first->second;
}

int64_t SatBmcPool::heap_bytes() const {
  int64_t total = 0;
  for (const auto& [net, bmc] : map_)
    total += static_cast<int64_t>(bmc->solver_heap_bytes());
  return total;
}

// ---------------------------------------------------------------------------
// ReuseCache

int64_t ReuseCache::approx_bytes() const {
  return sat_bmc.heap_bytes() + subcircuits.approx_bytes() +
         static_cast<int64_t>(order.tokens.size() * sizeof(SavedOrder::Token)) +
         static_cast<int64_t>(crucial_hints.size() * sizeof(GateId));
}

// ---------------------------------------------------------------------------
// The single-property engine (formerly RfnVerifier::run).

RfnResult run_property(const Netlist& m, GateId bad, const RfnOptions& opt,
                       const RunHooks& hooks) {
  RFN_CHECK(bad < m.size(), "bad signal out of range");
  RfnResult result;
  // Per-run metrics isolation: everything this run records is reported
  // relative to this baseline (trace_json serializes against it).
  const MetricsEpoch epoch;
  result.metrics_epoch = epoch.id();
  result.metrics_baseline = epoch.baseline();
  Span run_span("rfn.run");
  const Deadline deadline(opt.time_limit_s);
  // CPU attribution: this thread's CPU over the whole run, plus — when
  // portfolio workers race off-thread — the CPU their jobs burned. With zero
  // workers the jobs run inline on this thread and are already in the first
  // term, so adding race CPU again would double-count.
  const int64_t run_cpu0 = prof::thread_cpu_ns();
  double off_thread_race_cpu_s = 0.0;

  // Session seeding: the saved variable order and crucial-register hints of
  // earlier properties. Both are hints — they shape which abstract models
  // and orders the run visits, never what a verdict means.
  SavedOrder saved_order;
  if (hooks.order_io != nullptr) saved_order = *hooks.order_io;
  if (hooks.order_seeded != nullptr)
    *hooks.order_seeded = opt.save_var_order && !saved_order.empty();

  const std::vector<GateId> roots{bad};
  std::vector<GateId> included = initial_abstraction_registers(m, roots);
  if (hooks.seed_registers != nullptr && !hooks.seed_registers->empty()) {
    std::vector<bool> have(m.size(), false);
    for (GateId r : included) have[r] = true;
    for (GateId r : *hooks.seed_registers) {
      if (have[r]) continue;
      have[r] = true;
      included.push_back(r);
    }
  }

  // Proof-based shrink bookkeeping (opt.proof_shrink): registers of the
  // initial (seeded) abstraction are never dropped, and a register dropped
  // once becomes sticky if refinement ever re-adds it — shrink_abstraction
  // marks drops in this same bitmap, so the grow/shrink alternation cannot
  // oscillate on any single register.
  std::vector<bool> shrink_sticky;
  if (opt.proof_shrink) {
    shrink_sticky.assign(m.size(), false);
    for (GateId r : included) shrink_sticky[r] = true;
  }

  const auto note_crucial = [&hooks](const std::vector<GateId>& regs) {
    if (hooks.crucial_out == nullptr) return;
    const std::unordered_set<GateId> seen(hooks.crucial_out->begin(),
                                          hooks.crucial_out->end());
    for (GateId r : regs)
      if (seen.find(r) == seen.end()) hooks.crucial_out->push_back(r);
  };

  // Engine selection: empty opt.engines enables everything. "bdd" gates the
  // exact fixpoint (Step 2) and the approximate fallback; "atpg" gates the
  // sequential-ATPG probe and guided concretization; "sim" gates both
  // random-simulation probes; "sat" gates the incremental BMC engine in both
  // races; "pdr" gates the IC3 engine in both races. "bdd" and "pdr" can
  // prove Holds (pdr in either race — an unbounded Step-3 Holds is a
  // concrete proof), and "atpg"/"sim"/"sat"/"pdr" can conclude Fails — a
  // list without either side narrows what the loop can ever answer.
  const bool use_bdd = opt.engine_enabled("bdd");
  const bool use_atpg = opt.engine_enabled("atpg");
  const bool use_sim = opt.engine_enabled("sim");
  const bool use_pdr = opt.engine_enabled("pdr");
  std::unique_ptr<SatBmc> sat_owned;
  SatBmc* sat_bmc = nullptr;
  if (opt.engine_enabled("sat")) {
    // The pooled instance carries learned clauses and unrolled frames across
    // runs; without a pool the instance still persists across this run's
    // iterations and races (the race barrier is the happens-before edge —
    // single-owner, like a BddMgr).
    if (hooks.sat_bmc != nullptr) {
      sat_bmc = &hooks.sat_bmc->get(m);
    } else {
      sat_owned = std::make_unique<SatBmc>(m);
      sat_bmc = sat_owned.get();
    }
  }
  const std::vector<GateId> all_regs = m.regs();  // ascending = sorted

  // Resource watchdog: when a budget is set, the run is cancelled through
  // run_token (chaining any external token), and every cancellation point
  // below polls `cancel` instead of opt.cancel directly.
  CancelToken run_token(-1.0, opt.cancel);
  WatchdogOptions wd_opt;
  wd_opt.wall_budget_s = opt.budget_ms > 0.0 ? opt.budget_ms * 1e-3 : -1.0;
  wd_opt.bdd_node_budget = opt.budget_bdd_nodes;
  wd_opt.mem_budget_mb = opt.budget_mem_mb;
  wd_opt.sample_rss = opt.sample_rss;
  Watchdog watchdog(wd_opt, &run_token);
  const bool budgeted = wd_opt.wall_budget_s > 0.0 ||
                        wd_opt.bdd_node_budget > 0 || wd_opt.mem_budget_mb > 0;
  const CancelToken* cancel = budgeted ? &run_token : opt.cancel;
  // With sample_rss but no budget the monitor thread still runs, purely as
  // the profiler's RSS sampler: it can never trip, so cancellation stays on
  // the caller's token.
  if (budgeted || wd_opt.sample_rss) watchdog.start();

  // One scheduler (and thread pool) for the whole run; with zero workers the
  // races run their jobs sequentially inline, in priority order.
  Portfolio portfolio(opt.portfolio_workers);

  for (size_t iter = 0; iter < opt.max_iterations; ++iter) {
    if (deadline.expired()) {
      result.note = "time limit exceeded";
      break;
    }
    if (should_stop(cancel)) {
      result.note = "cancelled";
      break;
    }
    RfnIteration it;
    Span iter_span("rfn.iteration");
    iter_span.annotate("iter", static_cast<double>(iter));
    const Stopwatch iter_watch;
    ++result.iterations;

    // --- Step 1: abstract model ---
    std::sort(included.begin(), included.end());
    std::shared_ptr<const Subcircuit> sub_owned =
        hooks.subcircuits != nullptr
            ? hooks.subcircuits->get(m, roots, included)
            : std::make_shared<const Subcircuit>(
                  extract_abstract_model(m, roots, included));
    const Subcircuit& sub = *sub_owned;
    it.abstract_regs = sub.net.num_regs();
    it.abstract_inputs = sub.net.num_inputs();
    it.abstract_gates = sub.net.num_gates();
    RFN_INFO("iter %zu: abstract model regs=%zu inputs=%zu gates=%zu", iter,
             it.abstract_regs, it.abstract_inputs, sub.net.num_gates());

    // --- Step 2: prove or find an abstract error trace (engine race) ---
    BddMgr mgr;
    if (budgeted) mgr.set_live_node_probe(watchdog.node_probe());
    std::optional<Encoder> enc;
    std::optional<ImageComputer> img;
    if (use_bdd) {
      enc.emplace(mgr, sub.net);
      if (opt.save_var_order) apply_saved_order(mgr, *enc, sub, saved_order);
    }
    mgr.set_auto_reorder(opt.dynamic_reordering);
    mgr.set_node_budget(opt.reach.max_live_nodes);
    if (use_bdd) img.emplace(*enc);

    // SAT and PDR results live above finish_iteration so the per-iteration
    // record can harvest them on every exit path; the stat snapshot turns
    // the shared incremental solver's cumulative counters into deltas.
    SatBmcResult sat_probe, sat_conc;
    PdrResult pdr_probe, pdr_conc;
    const sat::SolverStats sat_before =
        sat_bmc != nullptr ? sat_bmc->solver_stats() : sat::SolverStats{};

    // Every exit path of this iteration funnels through here: harvest the
    // per-iteration BDD-manager internals, flush them into the registry
    // (exactly once per manager — it dies with the iteration) and stamp the
    // iteration wall time. "rfn.*" is the loop's own namespace.
    auto finish_iteration = [&](RfnIteration& done) {
      const BddStats& bs = mgr.stats();
      done.bdd_peak_nodes = bs.peak_live_nodes;
      done.bdd_cache_lookups = bs.cache_lookups;
      done.bdd_cache_hits = bs.cache_hits;
      done.bdd_reorderings = bs.reorderings;
      publish_bdd_metrics(bs);
      if (sat_bmc != nullptr) {
        const sat::SolverStats& ss = sat_bmc->solver_stats();
        done.sat_conflicts = ss.conflicts - sat_before.conflicts;
        done.sat_propagations = ss.propagations - sat_before.propagations;
        done.sat_depth = std::max(sat_probe.depth, sat_conc.depth);
        done.sat_core_size = sat_conc.status == AtpgStatus::Unsat
                                 ? sat_conc.core_registers.size()
                                 : 0;
      }
      if (use_pdr) {
        done.pdr_obligations =
            pdr_probe.stats.obligations + pdr_conc.stats.obligations;
        done.pdr_clauses = pdr_probe.stats.clauses + pdr_conc.stats.clauses;
        done.pdr_frames = std::max(pdr_probe.stats.frames, pdr_conc.stats.frames);
      }
      done.seconds = iter_watch.seconds();
      MetricsRegistry& reg = MetricsRegistry::global();
      reg.counter("rfn.iterations").add(1);
      reg.timer("rfn.iteration").record(done.seconds);
      reg.gauge("rfn.abstract_regs").set(static_cast<int64_t>(done.abstract_regs));
      reg.counter("rfn.refined_registers").add(done.refine.final_count);
      reg.counter("rfn.abstract_trace_cycles").add(done.trace_cycles);
      result.per_iteration.push_back(done);
    };

    const GateId bad_new = sub.to_new(bad);
    RFN_CHECK(bad_new != kNullGate, "property signal missing from abstraction");
    // Bad states: states from which some input valuation raises the signal.
    Bdd bad_set;
    if (use_bdd) {
      bad_set = mgr.exists(enc->signal_fn(bad_new), enc->input_vars());
      if (img->aborted() || bad_set.is_null()) {
        it.reach_status = ReachStatus::ResourceOut;
        finish_iteration(it);
        result.note = "abstract model exceeded the BDD node budget";
        break;
      }
    }

    ReachOptions reach_opt = opt.reach;
    if (opt.time_limit_s >= 0.0) {
      const double rem = deadline.remaining_seconds();
      reach_opt.time_limit_s = reach_opt.time_limit_s < 0.0
                                   ? rem
                                   : std::min(reach_opt.time_limit_s, rem);
    }
    const double probe_budget =
        opt.time_limit_s >= 0.0
            ? std::min(opt.race_probe_time_s, deadline.remaining_seconds())
            : opt.race_probe_time_s;
    // PDR's race budget: unlike the probes it can conclude Holds, but an
    // unlimited PDR job in an otherwise-winnerless race would stall the
    // loop, so it runs under its own wall limit (0 = unlimited).
    const double pdr_race_s = opt.race_pdr_time_s > 0.0 ? opt.race_pdr_time_s : -1.0;
    const double pdr_budget =
        opt.time_limit_s >= 0.0
            ? (pdr_race_s < 0.0
                   ? deadline.remaining_seconds()
                   : std::min(pdr_race_s, deadline.remaining_seconds()))
            : pdr_race_s;

    // Up to four engines race the abstract obligation. BDD reachability is
    // the only one that can *prove*; the sequential-ATPG, random-simulation
    // and SAT BMC probes can only *find* an abstract error trace — but when
    // they do, the trace is exact and the (cancelled) fixpoint is not needed
    // at all. The BddMgr above is owned by the bdd-reach job for the
    // duration of the race (single-owner rule), and so is the incremental
    // SAT instance by the sat-bmc job; the other probes touch only the
    // immutable netlist. Jobs carry engine tags because the lineup depends
    // on opt.engines — winner indices alone say nothing.
    enum class Eng { Bdd, Atpg, Sim, Sat, Pdr };
    ReachResult reach;
    SeqAtpgResult atpg_probe;
    Trace sim_probe;
    std::vector<PortfolioJob> jobs;
    std::vector<Eng> tags;
    if (use_bdd) {
      jobs.push_back({"bdd-reach", -1.0, [&](const CancelToken& token) {
                        ReachOptions ro = reach_opt;
                        ro.cancel = &token;
                        reach = forward_reach(*img, enc->initial_states(), bad_set, ro);
                        return reach.status != ReachStatus::ResourceOut;
                      }});
      tags.push_back(Eng::Bdd);
    }
    if (use_atpg) {
      jobs.push_back({"seq-atpg", probe_budget, [&](const CancelToken& token) {
                        AtpgOptions ao;
                        ao.max_backtracks = opt.race_atpg_backtracks;
                        ao.cancel = &token;
                        for (size_t k = 1; k <= opt.race_atpg_max_depth; ++k) {
                          if (token.cancelled()) return false;
                          SeqAtpgResult r = reach_target(sub.net, k, bad_new, true, {}, ao);
                          if (r.status == AtpgStatus::Sat) {
                            atpg_probe = std::move(r);
                            return true;
                          }
                          // Unsat/Abort at depth k only bounds the shortest
                          // trace; keep deepening until cancelled.
                        }
                        return false;
                      }});
      tags.push_back(Eng::Atpg);
    }
    if (use_sim) {
      jobs.push_back({"rand-sim", probe_budget, [&, iter](const CancelToken& token) {
                        sim_probe = random_sim_error_trace(
                            sub.net, bad_new, opt.race_sim_cycles,
                            0x51D5EEDull + iter, &token);
                        return !sim_probe.empty();
                      }});
      tags.push_back(Eng::Sim);
    }
    if (sat_bmc != nullptr) {
      // The enable-assumption formulation makes this the abstract obligation
      // on the original design: registers outside `included` stay free, the
      // same pseudo-input semantics the extracted subcircuit gives them. A
      // bounded Unsat proves nothing unbounded, so only Sat is conclusive.
      jobs.push_back({"sat-bmc", probe_budget, [&](const CancelToken& token) {
                        sat_probe = sat_bmc->check(bad, opt.race_sat_max_depth,
                                                   included, &token);
                        return sat_probe.status == AtpgStatus::Sat;
                      }});
      tags.push_back(Eng::Sat);
    }
    if (use_pdr) {
      // Same pseudo-input semantics again, IC3-style: the engine runs on the
      // original design with only `included` as state, so a Holds here is an
      // UNBOUNDED proof of the abstract obligation — the only non-BDD engine
      // that can win this race in the Proved direction. A Cex is a real
      // abstract error trace, already decoded into original-design ids.
      jobs.push_back({"pdr", pdr_budget, [&](const CancelToken& token) {
                        Pdr engine(m, bad, included);
                        PdrOptions po;
                        po.max_frames = opt.race_pdr_max_frames;
                        pdr_probe = engine.run(po, &token);
                        return pdr_probe.status == PdrStatus::Holds ||
                               pdr_probe.status == PdrStatus::Cex;
                      }});
      tags.push_back(Eng::Pdr);
    }
    const RaceResult abs_race = portfolio.race(jobs, cancel);
    it.abstract_engine = abs_race.winner_name;
    it.abstract_race_seconds = abs_race.seconds;
    it.abstract_race_cpu_seconds = abs_race.cpu_seconds;
    if (opt.portfolio_workers > 0) off_thread_race_cpu_s += abs_race.cpu_seconds;
    it.reach_status = use_bdd ? reach.status : ReachStatus::ResourceOut;
    it.reach_steps = reach.steps;

    std::vector<Trace> traces_n;  // abstract error traces in sub.net ids
    std::vector<Trace> traces;    // the same traces in original-design ids
    if (abs_race.conclusive && tags[abs_race.winner] == Eng::Bdd) {
      if (reach.status == ReachStatus::Proved) {
        if (opt.save_var_order) saved_order = save_order(mgr, *enc, sub);
        finish_iteration(it);
        result.verdict = Verdict::Holds;
        break;
      }
      // BadReachable: abstract error trace(s) via the hybrid engine.
      HybridTraceOptions hybrid_opt = opt.hybrid;
      if (hybrid_opt.cancel == nullptr) hybrid_opt.cancel = cancel;
      traces_n = hybrid_error_traces(*enc, sub.net, reach, bad_set,
                                     std::max<size_t>(1, opt.traces_per_iteration),
                                     hybrid_opt, &it.hybrid);
      if (opt.save_var_order) saved_order = save_order(mgr, *enc, sub);
      if (traces_n.empty()) {
        finish_iteration(it);
        result.note = "hybrid trace engine exhausted candidates";
        break;
      }
    } else if (abs_race.conclusive && tags[abs_race.winner] == Eng::Pdr &&
               pdr_probe.status == PdrStatus::Holds) {
      // PDR converged on the abstract obligation: the inductive frame is an
      // unbounded proof, and subcircuit over-approximation lifts it to the
      // original design. The frame travels out as the certification witness
      // — a BDD fixpoint over this register scope may never have run.
      it.reach_status = ReachStatus::Proved;
      if (use_bdd && opt.save_var_order) saved_order = save_order(mgr, *enc, sub);
      result.pdr_invariant.present = true;
      result.pdr_invariant.registers = pdr_probe.scope;
      result.pdr_invariant.clauses = pdr_probe.clauses;
      finish_iteration(it);
      result.verdict = Verdict::Holds;
      RFN_INFO("iter %zu: pdr proved the abstract model (frames=%zu)", iter,
               pdr_probe.stats.frames);
      break;
    } else if (abs_race.conclusive) {
      // A probe engine found an abstract error trace while the fixpoint was
      // still running: the trace is a real trace of the abstract model, so
      // the obligation is BadReachable without any rings.
      it.reach_status = ReachStatus::BadReachable;
      const Eng w = tags[abs_race.winner];
      if (w == Eng::Sat || w == Eng::Pdr) {
        // SAT and PDR traces are decoded straight into original-design ids
        // (cut registers in the input cubes), so they skip trace_to_old
        // below.
        traces.push_back(w == Eng::Sat ? std::move(sat_probe.trace)
                                       : std::move(pdr_probe.trace));
      } else {
        traces_n.push_back(w == Eng::Atpg ? atpg_probe.trace : sim_probe);
      }
      if (use_bdd && opt.save_var_order) saved_order = save_order(mgr, *enc, sub);
      RFN_INFO("iter %zu: %s won the abstract race", iter,
               abs_race.winner_name.c_str());
    } else {
      // No engine was conclusive: the exact fixpoint ran out of resources
      // and the probes found nothing within their budgets.
      if (use_bdd && opt.approx_fallback && !deadline.expired() &&
          !should_stop(cancel)) {
        // Future-work fallback: the overlapping-partition approximate
        // traversal may still prove the property when the exact fixpoint
        // cannot complete on a large abstract model.
        it.approx_used = true;
        ApproxReachOptions aopt;
        aopt.block_size = opt.approx_block_size;
        aopt.overlap = opt.approx_overlap;
        aopt.time_limit_s = opt.time_limit_s >= 0.0 ? deadline.remaining_seconds()
                                                    : reach_opt.time_limit_s;
        aopt.max_live_nodes = reach_opt.max_live_nodes;
        const ApproxReachResult approx =
            approx_forward_reach(*enc, enc->initial_states(), bad_set, aopt);
        if (approx.status == ApproxStatus::Proved) {
          it.approx_proved = true;
          finish_iteration(it);
          result.verdict = Verdict::Holds;
          result.note = "proved by overlapping-partition approximation";
          break;
        }
        // Inconclusive: there is no error trace to drive Step 4, but the
        // loop can still make progress topologically — pull in the next
        // batch of registers closest to the property and retry. This
        // bottoms out at the full-COI abstraction, where the approximate
        // traversal is as strong as it gets.
        std::vector<bool> have(m.size(), false);
        for (GateId r : included) have[r] = true;
        size_t added = 0;
        for (GateId r : closest_registers(m, roots, included.size() + 8)) {
          if (have[r]) continue;
          included.push_back(r);
          ++added;
        }
        if (added > 0) {
          RFN_INFO("iter %zu: approx inconclusive; blind-refining with %zu registers",
                   iter, added);
          finish_iteration(it);
          continue;
        }
      }
      finish_iteration(it);
      result.note = "abstract fixpoint exceeded resources";
      break;
    }

    for (const Trace& t : traces_n) traces.push_back(sub.trace_to_old(t));
    const Trace& abs_trace = traces.front();
    it.trace_cycles = abs_trace.cycles();
    RFN_INFO("iter %zu: %zu abstract error trace(s), first %zu cycles", iter,
             traces.size(), abs_trace.cycles());

    // --- Step 3: concretize on the original design (engine race) ---
    // Guided sequential ATPG is conclusive both ways (Sat = real trace,
    // Unsat = spurious). SAT BMC with every register enabled is also
    // conclusive both ways at this bounded depth: Sat is a real error trace
    // (possibly shorter than the abstract one), Unsat proves no trace of
    // length <= the abstract trace exists — so the trace is spurious, and
    // the assumption core names the registers the refutation needed (the
    // refinement hints). Random simulation can only conclude Sat, but a hit
    // is a real error trace found without search.
    ConcretizeResult conc;
    Trace sim_cex;
    std::vector<PortfolioJob> cjobs;
    std::vector<Eng> ctags;
    if (use_atpg) {
      cjobs.push_back({"guided-atpg", -1.0, [&](const CancelToken& token) {
                         AtpgOptions ao = opt.concretize_atpg;
                         ao.cancel = &token;
                         conc = traces.size() == 1
                                    ? concretize_trace(m, abs_trace, bad, ao)
                                    : concretize_with_traces(m, traces, bad, ao);
                         return conc.status != AtpgStatus::Abort;
                       }});
      ctags.push_back(Eng::Atpg);
    }
    if (use_sim) {
      cjobs.push_back({"rand-sim", probe_budget, [&, iter](const CancelToken& token) {
                         sim_cex = random_sim_error_trace(
                             m, bad, opt.race_sim_cycles,
                             0xC0FFEEULL + iter, &token);
                         return !sim_cex.empty();
                       }});
      ctags.push_back(Eng::Sim);
    }
    if (sat_bmc != nullptr) {
      cjobs.push_back({"sat-bmc", -1.0, [&](const CancelToken& token) {
                         sat_conc = sat_bmc->check(bad, abs_trace.cycles(),
                                                   all_regs, &token);
                         return sat_conc.status != AtpgStatus::Abort;
                       }});
      ctags.push_back(Eng::Sat);
    }
    if (use_pdr) {
      // Unbounded concrete check: with every register included, PDR's
      // verdict is conclusive both ways — Cex is a real error trace, and
      // Holds is an inductive proof on the FULL design, stronger than the
      // bounded refutations beside it: it ends the whole loop, not just
      // this trace.
      cjobs.push_back({"pdr", pdr_budget, [&](const CancelToken& token) {
                         Pdr engine(m, bad, all_regs);
                         PdrOptions po;
                         po.max_frames = opt.race_pdr_max_frames;
                         pdr_conc = engine.run(po, &token);
                         return pdr_conc.status == PdrStatus::Holds ||
                                pdr_conc.status == PdrStatus::Cex;
                       }});
      ctags.push_back(Eng::Pdr);
    }
    RaceResult conc_race;
    if (!cjobs.empty()) conc_race = portfolio.race(cjobs, cancel);
    it.concretize_engine = conc_race.winner_name;
    it.concretize_race_seconds = conc_race.seconds;
    it.concretize_race_cpu_seconds = conc_race.cpu_seconds;
    if (opt.portfolio_workers > 0) off_thread_race_cpu_s += conc_race.cpu_seconds;
    if (conc_race.conclusive) {
      const Eng w = ctags[conc_race.winner];
      if (w == Eng::Sim) {
        it.concretize_status = AtpgStatus::Sat;
        finish_iteration(it);
        result.verdict = Verdict::Fails;
        result.error_trace = sim_cex;
        break;
      }
      if (w == Eng::Sat) {
        it.concretize_status = sat_conc.status;
        if (sat_conc.status == AtpgStatus::Sat) {
          finish_iteration(it);
          result.verdict = Verdict::Fails;
          result.error_trace = sat_conc.trace;
          break;
        }
        // Unsat: spurious; fall through to refinement with the core hints.
      }
      if (w == Eng::Pdr) {
        if (pdr_conc.status == PdrStatus::Cex) {
          it.concretize_status = AtpgStatus::Sat;
          finish_iteration(it);
          result.verdict = Verdict::Fails;
          result.error_trace = pdr_conc.trace;
          break;
        }
        // Holds: an unbounded proof on the full design — the property holds
        // outright, no matter what the abstract trace suggested.
        it.concretize_status = AtpgStatus::Unsat;
        result.pdr_invariant.present = true;
        result.pdr_invariant.registers = pdr_conc.scope;
        result.pdr_invariant.clauses = pdr_conc.clauses;
        finish_iteration(it);
        result.verdict = Verdict::Holds;
        RFN_INFO("iter %zu: pdr proved the full design (frames=%zu)", iter,
                 pdr_conc.stats.frames);
        break;
      }
    }
    if (!conc_race.conclusive || ctags[conc_race.winner] == Eng::Atpg) {
      it.concretize_status = conc.status;
      if (conc.status == AtpgStatus::Sat) {
        finish_iteration(it);
        result.verdict = Verdict::Fails;
        result.error_trace = conc.trace;
        break;
      }
    }

    // --- Step 4: refine ---
    if (should_stop(cancel)) {
      finish_iteration(it);
      result.note = "cancelled";
      break;
    }
    // Bounded-UNSAT assumption cores become refinement hints: registers the
    // refutation needed that the abstraction lacks go to the front of the
    // candidate list. Hints only — identify_crucial_registers still vets
    // every one of them — so they steer the refinement, never the verdict.
    RefineOptions refine_opt = opt.refine;
    if (opt.sat_core_hints && sat_conc.status == AtpgStatus::Unsat) {
      for (GateId r : sat_conc.core_registers)
        if (!std::binary_search(included.begin(), included.end(), r))
          refine_opt.hints.push_back(r);
      if (!refine_opt.hints.empty())
        MetricsRegistry::global()
            .counter("rfn.sat_hint_registers")
            .add(refine_opt.hints.size());
    }
    const std::vector<GateId> crucial = identify_crucial_registers(
        m, roots, bad, included, abs_trace, refine_opt, &it.refine);
    // Proof-driven shrink (Eén/Mishchenko/Amla): the Step-3 bounded-UNSAT
    // refutation names the registers it needed in its assumption core;
    // included registers outside that core contributed nothing to refuting
    // this trace, so drop them before growing with the crucial set. Sound
    // for any included set — the abstract check over-approximates for every
    // scope and concrete checks always run on the full design — so this can
    // change which abstractions the loop visits, never a verdict.
    if (opt.proof_shrink && sat_conc.status == AtpgStatus::Unsat) {
      it.shrunk_registers = shrink_abstraction(
          &included, sat_conc.core_registers, &shrink_sticky);
      if (it.shrunk_registers > 0) {
        MetricsRegistry::global()
            .counter("rfn.shrink_registers")
            .add(it.shrunk_registers);
        RFN_INFO("iter %zu: proof shrink dropped %zu registers (now %zu)",
                 iter, it.shrunk_registers, included.size());
      }
    }
    finish_iteration(it);
    if (crucial.empty()) {
      result.note = "refinement produced no crucial registers";
      break;
    }
    RFN_INFO("iter %zu: refining with %zu crucial registers", iter, crucial.size());
    note_crucial(crucial);
    for (GateId r : crucial) included.push_back(r);
  }

  std::sort(included.begin(), included.end());
  result.final_registers = std::move(included);
  result.final_abstract_regs = result.final_registers.size();
  result.seconds = deadline.elapsed_seconds();
  result.cpu_seconds =
      static_cast<double>(prof::thread_cpu_ns() - run_cpu0) * 1e-9 +
      off_thread_race_cpu_s;
  if (hooks.order_io != nullptr) *hooks.order_io = std::move(saved_order);

  // Joining the monitor thread is the happens-before edge for reading the
  // trip state (and, in the CLI, for exporting the span trace).
  watchdog.stop();
  if (watchdog.tripped()) {
    result.budget_trip.tripped = true;
    result.budget_trip.reason = watchdog.trip_reason();
    result.budget_trip.at_seconds = watchdog.trip_seconds();
    result.budget_trip.bdd_nodes = watchdog.trip_bdd_nodes();
    result.budget_trip.rss_bytes = watchdog.trip_rss_bytes();
    // A verdict reached before the trip landed is still sound; only an
    // undecided run degrades to resource-out.
    if (result.verdict == Verdict::Unknown) {
      result.verdict = Verdict::ResourceOut;
      result.note = "budget exceeded: " + result.budget_trip.reason;
    }
  }

  MetricsRegistry& reg = MetricsRegistry::global();
  reg.counter("rfn.runs").add(1);
  reg.timer("rfn.run").record(result.seconds);
  switch (result.verdict) {
    case Verdict::Holds: reg.counter("rfn.verdict.holds").add(1); break;
    case Verdict::Fails: reg.counter("rfn.verdict.fails").add(1); break;
    case Verdict::Unknown: reg.counter("rfn.verdict.unknown").add(1); break;
    case Verdict::ResourceOut:
      reg.counter("rfn.verdict.resource_out").add(1);
      break;
  }
  run_span.annotate("verdict", to_string(result.verdict));
  return result;
}

// ---------------------------------------------------------------------------
// Clustering

std::vector<std::vector<size_t>> cluster_by_cone_overlap(
    const std::vector<std::vector<GateId>>& cones, double threshold,
    size_t max_cluster_size, const std::vector<bool>& solo) {
  std::vector<std::vector<size_t>> clusters;
  if (max_cluster_size == 0) max_cluster_size = 1;
  for (size_t i = 0; i < cones.size(); ++i) {
    const bool force_solo =
        threshold <= 0.0 || (i < solo.size() && solo[i]);
    bool placed = false;
    if (!force_solo) {
      for (auto& cluster : clusters) {
        if (cluster.size() >= max_cluster_size) continue;
        const size_t rep = cluster.front();
        if (rep < solo.size() && solo[rep]) continue;
        if (jaccard_overlap(cones[rep], cones[i]) >= threshold) {
          cluster.push_back(i);
          placed = true;
          break;
        }
      }
    }
    if (!placed) clusters.push_back({i});
  }
  return clusters;
}

// ---------------------------------------------------------------------------
// VerifySession

namespace {

RfnOptions merge_overrides(const RfnOptions& defaults,
                           const PropertyRequest::Overrides& o) {
  RfnOptions r = defaults;
  if (o.time_limit_s) r.time_limit_s = *o.time_limit_s;
  if (o.max_iterations) r.max_iterations = *o.max_iterations;
  if (o.traces_per_iteration) r.traces_per_iteration = *o.traces_per_iteration;
  if (o.budget_ms) r.budget_ms = *o.budget_ms;
  if (o.budget_bdd_nodes) r.budget_bdd_nodes = *o.budget_bdd_nodes;
  if (o.budget_mem_mb) r.budget_mem_mb = *o.budget_mem_mb;
  return r;
}

/// Applies the fair-share wall budget for a run answering `props_covered`
/// properties: the run may never exceed its members' combined share (an
/// explicit per-run budget can only tighten it further).
void apply_fair_share(RfnOptions& opt, double share_ms, size_t props_covered) {
  if (share_ms <= 0.0) return;
  const double run_budget = share_ms * static_cast<double>(props_covered);
  opt.budget_ms = opt.budget_ms > 0.0 ? std::min(opt.budget_ms, run_budget)
                                      : run_budget;
}

std::string join_errors(const std::vector<std::string>& errors) {
  std::string s;
  for (const auto& e : errors) {
    if (!s.empty()) s += "; ";
    s += e;
  }
  return s;
}

}  // namespace

VerifySession::VerifySession(const Netlist& m, SessionOptions opt)
    : m_(&m), opt_(std::move(opt)) {}

void VerifySession::notify(const PropertyResult& r) const {
  if (!opt_.on_property) return;
  std::lock_guard<std::mutex> lk(emit_mu_);
  opt_.on_property(r);
}

void VerifySession::run_cluster(const std::vector<PropertyRequest>& props,
                                const std::vector<std::vector<GateId>>& cones,
                                const std::vector<size_t>& members,
                                size_t cluster_id, double share_ms,
                                std::vector<PropertyResult>& results) const {
  // Cluster-local state, plus — when the caller provided a cross-session
  // warm cache and the session runs inline — the shared base cache. The
  // workers == 0 restriction is load-bearing: memo, pool, and order are
  // single-threaded by design, and concurrent cluster jobs would race on
  // them.
  ReuseCache local;
  ReuseCache* base_cache = (opt_.shared_cache != nullptr && opt_.workers == 0)
                               ? opt_.shared_cache
                               : &local;

  // One engine run with the reuse cache wired in. `cone` filters the
  // crucial-register hints down to registers that can actually influence
  // this run's property (seeding anything else would only bloat the
  // abstraction).
  const auto run_one = [&](const Netlist& net, GateId bad_sig,
                           const RfnOptions& ro,
                           const std::vector<GateId>& cone,
                           bool* order_seeded, size_t* seeded) -> RfnResult {
    RunHooks hooks;
    std::vector<GateId> seeds;
    if (opt_.reuse) {
      // Memo and pool must match the netlist the run sees: a pooled SatBmc
      // references its netlist by address, and memo keys reuse gate ids —
      // entries for an augmented disjunction copy would dangle (the copy
      // dies with the cluster) or collide with a later copy's coincident
      // ids. So only base-netlist runs touch the possibly-shared base
      // cache; the order and hints are original-design ids, portable across
      // both netlists, and always shared.
      ReuseCache& structural = &net == m_ ? *base_cache : local;
      for (GateId r : base_cache->crucial_hints)
        if (std::binary_search(cone.begin(), cone.end(), r)) seeds.push_back(r);
      hooks.subcircuits = &structural.subcircuits;
      hooks.sat_bmc = &structural.sat_bmc;
      hooks.order_io = &base_cache->order;
      hooks.order_seeded = order_seeded;
      hooks.seed_registers = &seeds;
      hooks.crucial_out = &base_cache->crucial_hints;
    }
    if (seeded != nullptr) *seeded = seeds.size();
    return run_property(net, bad_sig, ro, hooks);
  };

  const auto run_solo = [&](size_t idx, size_t fair_share_props) {
    const PropertyRequest& p = props[idx];
    RfnOptions ro = merge_overrides(opt_.defaults, p.overrides);
    apply_fair_share(ro, share_ms, fair_share_props);
    PropertyResult& out = results[idx];
    out.cluster = cluster_id;
    out.clustered = false;
    RfnResult rr = run_one(*m_, p.bad, ro, cones[idx], &out.order_seeded,
                           &out.seeded_registers);
    out.verdict = rr.verdict;
    out.trace = rr.error_trace;
    out.stats = std::move(rr);
    notify(out);
  };

  if (members.size() == 1) {
    run_solo(members.front(), 1);
    return;
  }

  // Shared run: one disjunction root answers the whole cluster at once. The
  // augmented design is a copy of the original plus OR gates above the
  // member properties, so every original GateId — and with it traces, cones,
  // hints, and saved variable orders — stays valid on both.
  Netlist aug = *m_;
  std::vector<size_t> remaining = members;
  // Cluster runs never carry per-property overrides (such properties are
  // forced solo by the clustering), so the shared run uses the defaults.
  for (size_t round = 0; !remaining.empty(); ++round) {
    // The union cone bounds which hint registers a shared run may seed.
    std::vector<GateId> union_cone;
    std::vector<GateId> bads;
    for (size_t idx : remaining) {
      bads.push_back(props[idx].bad);
      union_cone.insert(union_cone.end(), cones[idx].begin(), cones[idx].end());
    }
    std::sort(union_cone.begin(), union_cone.end());
    union_cone.erase(std::unique(union_cone.begin(), union_cone.end()),
                     union_cone.end());
    const GateId bad_any = append_disjunction(
        aug, bads,
        "session_any_c" + std::to_string(cluster_id) + "_r" + std::to_string(round));

    RfnOptions ro = opt_.defaults;
    apply_fair_share(ro, share_ms, remaining.size());
    bool order_seeded = false;
    size_t seeded = 0;
    RfnResult rr = run_one(aug, bad_any, ro, union_cone, &order_seeded, &seeded);
    MetricsRegistry::global().counter("session.cluster_runs").add(1);

    if (rr.verdict == Verdict::Holds) {
      // The disjunction never rises, so no member ever rises.
      for (size_t idx : remaining) {
        PropertyResult& out = results[idx];
        out.verdict = Verdict::Holds;
        out.stats = rr;
        out.cluster = cluster_id;
        out.clustered = true;
        out.order_seeded = order_seeded;
        out.seeded_registers = seeded;
        notify(out);
      }
      return;
    }

    if (rr.verdict == Verdict::Fails) {
      // Attribute the concrete error trace: a member fails iff its own bad
      // signal is a definite 1 at the trace's final cycle under 3-valued
      // replay (at least one must be — the disjunction is).
      std::vector<size_t> keep;
      size_t attributed = 0;
      for (size_t idx : remaining) {
        if (simulate_trace(aug, rr.error_trace, props[idx].bad) == Tri::T) {
          PropertyResult& out = results[idx];
          out.verdict = Verdict::Fails;
          out.trace = rr.error_trace;
          out.stats = rr;
          out.cluster = cluster_id;
          out.clustered = true;
          out.order_seeded = order_seeded;
          out.seeded_registers = seeded;
          notify(out);
          ++attributed;
        } else {
          keep.push_back(idx);
        }
      }
      if (attributed == 0) {
        // Replay could not pin the failure on any member (an X-heavy trace);
        // the shared run is inconclusive for attribution — answer the rest
        // independently rather than loop forever.
        RFN_WARN("cluster %zu: error trace attribution failed; falling back",
                 cluster_id);
        break;
      }
      remaining = std::move(keep);
      // The survivors re-run on a fresh disjunction (minus the failed
      // members), inheriting the cache the failed run warmed up.
      continue;
    }

    // Unknown / ResourceOut: the shared run could not answer the cluster;
    // fall back to independent per-property runs (still cache-warmed).
    break;
  }

  MetricsRegistry::global().counter("session.cluster_fallbacks").add(!remaining.empty());
  for (size_t idx : remaining) run_solo(idx, 1);
}

std::vector<PropertyResult> VerifySession::run(
    const std::vector<PropertyRequest>& props) {
  const std::vector<std::string> errors = opt_.defaults.validate();
  RFN_CHECK(errors.empty(), "invalid session options: %s",
            join_errors(errors).c_str());

  std::vector<PropertyResult> results(props.size());
  clusters_.clear();
  if (props.empty()) return results;

  Span span("session.run");
  const Stopwatch watch;

  // Resolve names and register cones; properties carrying overrides are
  // pinned solo so the override applies to exactly one run.
  std::vector<std::vector<GateId>> cones(props.size());
  std::vector<bool> solo(props.size(), false);
  for (size_t i = 0; i < props.size(); ++i) {
    const PropertyRequest& p = props[i];
    RFN_CHECK(p.bad != kNullGate && p.bad < m_->size(),
              "property %zu: bad signal out of range", i);
    results[i].bad = p.bad;
    results[i].name = !p.name.empty()        ? p.name
                      : m_->has_name(p.bad)  ? m_->name(p.bad)
                                             : "p" + std::to_string(i);
    cones[i] = coi_registers(*m_, {p.bad});
    std::sort(cones[i].begin(), cones[i].end());
    solo[i] = p.overrides.any();
  }

  clusters_ = cluster_by_cone_overlap(cones, opt_.cluster_overlap,
                                      opt_.max_cluster_size, solo);
  const double share_ms =
      opt_.batch_budget_ms > 0.0
          ? opt_.batch_budget_ms / static_cast<double>(props.size())
          : -1.0;
  RFN_INFO("session: %zu properties in %zu clusters (overlap >= %.2f)",
           props.size(), clusters_.size(), opt_.cluster_overlap);

  // Cluster jobs across the shared executor. Each job writes only its own
  // members' result slots, so the vector needs no locking; the latch below
  // is the completion barrier (inline execution with zero workers).
  Executor exec(opt_.workers);
  std::mutex mu;
  std::condition_variable cv;
  size_t pending = clusters_.size();
  for (size_t ci = 0; ci < clusters_.size(); ++ci) {
    exec.submit([&, ci] {
      Span job_span("session.cluster");
      job_span.annotate("cluster", static_cast<double>(ci));
      run_cluster(props, cones, clusters_[ci], ci, share_ms, results);
      std::lock_guard<std::mutex> lk(mu);
      if (--pending == 0) cv.notify_all();
    });
  }
  {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return pending == 0; });
  }

  MetricsRegistry& reg = MetricsRegistry::global();
  reg.counter("session.batches").add(1);
  reg.counter("session.properties").add(props.size());
  reg.counter("session.clusters").add(clusters_.size());
  for (const PropertyResult& r : results) {
    reg.counter("session.clustered_verdicts").add(r.clustered ? 1 : 0);
    reg.counter("session.order_seeded").add(r.order_seeded ? 1 : 0);
    reg.counter("session.seeded_registers").add(r.seeded_registers);
  }
  reg.timer("session.run").record(watch.seconds());
  span.annotate("properties", static_cast<double>(props.size()));
  span.annotate("clusters", static_cast<double>(clusters_.size()));
  return results;
}

}  // namespace rfn
