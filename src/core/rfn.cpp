#include "core/rfn.hpp"

#include <algorithm>

#include "bdd/bdd.hpp"
#include "core/abstraction.hpp"
#include "core/concretize.hpp"
#include "core/portfolio.hpp"
#include "mc/approx_reach.hpp"
#include "mc/image.hpp"
#include "netlist/analysis.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"
#include "util/watchdog.hpp"

namespace rfn {

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::Holds: return "T";
    case Verdict::Fails: return "F";
    case Verdict::Unknown: return "?";
    case Verdict::ResourceOut: return "resource-out";
  }
  return "?";
}

RfnVerifier::RfnVerifier(const Netlist& m, GateId bad, RfnOptions opt)
    : m_(&m), bad_(bad), opt_(std::move(opt)) {
  RFN_CHECK(bad < m.size(), "bad signal out of range");
  included_ = initial_abstraction_registers(m, {bad});
}

RfnResult RfnVerifier::run() {
  RfnResult result;
  // Per-run metrics isolation: everything this run records is reported
  // relative to this baseline (trace_json serializes against it).
  const MetricsEpoch epoch;
  result.metrics_epoch = epoch.id();
  result.metrics_baseline = epoch.baseline();
  Span run_span("rfn.run");
  const Deadline deadline(opt_.time_limit_s);
  SavedOrder saved_order;
  const std::vector<GateId> roots{bad_};

  // Resource watchdog: when a budget is set, the run is cancelled through
  // run_token (chaining any external token), and every cancellation point
  // below polls `cancel` instead of opt_.cancel directly.
  CancelToken run_token(-1.0, opt_.cancel);
  WatchdogOptions wd_opt;
  wd_opt.wall_budget_s = opt_.budget_ms > 0.0 ? opt_.budget_ms * 1e-3 : -1.0;
  wd_opt.bdd_node_budget = opt_.budget_bdd_nodes;
  Watchdog watchdog(wd_opt, &run_token);
  const bool budgeted =
      wd_opt.wall_budget_s > 0.0 || wd_opt.bdd_node_budget > 0;
  const CancelToken* cancel = budgeted ? &run_token : opt_.cancel;
  if (budgeted) watchdog.start();

  // One scheduler (and thread pool) for the whole run; with zero workers the
  // races run their jobs sequentially inline, in priority order.
  Portfolio portfolio(opt_.portfolio_workers);

  for (size_t iter = 0; iter < opt_.max_iterations; ++iter) {
    if (deadline.expired()) {
      result.note = "time limit exceeded";
      break;
    }
    if (should_stop(cancel)) {
      result.note = "cancelled";
      break;
    }
    RfnIteration it;
    Span iter_span("rfn.iteration");
    iter_span.annotate("iter", static_cast<double>(iter));
    const Stopwatch iter_watch;
    ++result.iterations;

    // --- Step 1: abstract model ---
    std::sort(included_.begin(), included_.end());
    const Subcircuit sub = extract_abstract_model(*m_, roots, included_);
    it.abstract_regs = sub.net.num_regs();
    it.abstract_inputs = sub.net.num_inputs();
    it.abstract_gates = sub.net.num_gates();
    RFN_INFO("iter %zu: abstract model regs=%zu inputs=%zu gates=%zu", iter,
             it.abstract_regs, it.abstract_inputs, sub.net.num_gates());

    // --- Step 2: prove or find an abstract error trace (engine race) ---
    BddMgr mgr;
    if (budgeted) mgr.set_live_node_probe(watchdog.node_probe());
    Encoder enc(mgr, sub.net);
    if (opt_.save_var_order) apply_saved_order(mgr, enc, sub, saved_order);
    mgr.set_auto_reorder(opt_.dynamic_reordering);
    mgr.set_node_budget(opt_.reach.max_live_nodes);
    ImageComputer img(enc);

    // Every exit path of this iteration funnels through here: harvest the
    // per-iteration BDD-manager internals, flush them into the registry
    // (exactly once per manager — it dies with the iteration) and stamp the
    // iteration wall time. "rfn.*" is the loop's own namespace.
    auto finish_iteration = [&](RfnIteration& done) {
      const BddStats& bs = mgr.stats();
      done.bdd_peak_nodes = bs.peak_live_nodes;
      done.bdd_cache_lookups = bs.cache_lookups;
      done.bdd_cache_hits = bs.cache_hits;
      done.bdd_reorderings = bs.reorderings;
      publish_bdd_metrics(bs);
      done.seconds = iter_watch.seconds();
      MetricsRegistry& reg = MetricsRegistry::global();
      reg.counter("rfn.iterations").add(1);
      reg.timer("rfn.iteration").record(done.seconds);
      reg.gauge("rfn.abstract_regs").set(static_cast<int64_t>(done.abstract_regs));
      reg.counter("rfn.refined_registers").add(done.refine.final_count);
      reg.counter("rfn.abstract_trace_cycles").add(done.trace_cycles);
      result.per_iteration.push_back(done);
    };

    const GateId bad_new = sub.to_new(bad_);
    RFN_CHECK(bad_new != kNullGate, "property signal missing from abstraction");
    // Bad states: states from which some input valuation raises the signal.
    const Bdd bad_set = mgr.exists(enc.signal_fn(bad_new), enc.input_vars());
    if (img.aborted() || bad_set.is_null()) {
      it.reach_status = ReachStatus::ResourceOut;
      finish_iteration(it);
      result.note = "abstract model exceeded the BDD node budget";
      break;
    }

    ReachOptions reach_opt = opt_.reach;
    if (opt_.time_limit_s >= 0.0) {
      const double rem = deadline.remaining_seconds();
      reach_opt.time_limit_s = reach_opt.time_limit_s < 0.0
                                   ? rem
                                   : std::min(reach_opt.time_limit_s, rem);
    }
    const double probe_budget =
        opt_.time_limit_s >= 0.0
            ? std::min(opt_.race_probe_time_s, deadline.remaining_seconds())
            : opt_.race_probe_time_s;

    // Three engines race the abstract obligation. BDD reachability is the
    // only one that can *prove*; the sequential-ATPG and random-simulation
    // probes can only *find* an abstract error trace — but when they do, the
    // trace is exact and the (cancelled) fixpoint is not needed at all. The
    // BddMgr above is owned by the bdd-reach job for the duration of the
    // race (single-owner rule); the probes touch only the immutable netlist.
    ReachResult reach;
    SeqAtpgResult atpg_probe;
    Trace sim_probe;
    std::vector<PortfolioJob> jobs;
    jobs.push_back({"bdd-reach", -1.0, [&](const CancelToken& token) {
                      ReachOptions ro = reach_opt;
                      ro.cancel = &token;
                      reach = forward_reach(img, enc.initial_states(), bad_set, ro);
                      return reach.status != ReachStatus::ResourceOut;
                    }});
    jobs.push_back({"seq-atpg", probe_budget, [&](const CancelToken& token) {
                      AtpgOptions ao;
                      ao.max_backtracks = opt_.race_atpg_backtracks;
                      ao.cancel = &token;
                      for (size_t k = 1; k <= opt_.race_atpg_max_depth; ++k) {
                        if (token.cancelled()) return false;
                        SeqAtpgResult r = reach_target(sub.net, k, bad_new, true, {}, ao);
                        if (r.status == AtpgStatus::Sat) {
                          atpg_probe = std::move(r);
                          return true;
                        }
                        // Unsat/Abort at depth k only bounds the shortest
                        // trace; keep deepening until cancelled.
                      }
                      return false;
                    }});
    jobs.push_back({"rand-sim", probe_budget, [&, iter](const CancelToken& token) {
                      sim_probe = random_sim_error_trace(
                          sub.net, bad_new, opt_.race_sim_cycles,
                          0x51D5EEDull + iter, &token);
                      return !sim_probe.empty();
                    }});
    const RaceResult abs_race = portfolio.race(jobs, cancel);
    it.abstract_engine = abs_race.winner_name;
    it.abstract_race_seconds = abs_race.seconds;
    it.reach_status = reach.status;
    it.reach_steps = reach.steps;

    std::vector<Trace> traces_n;  // abstract error traces in sub.net ids
    if (abs_race.conclusive && abs_race.winner == 0) {
      if (reach.status == ReachStatus::Proved) {
        if (opt_.save_var_order) saved_order = save_order(mgr, enc, sub);
        finish_iteration(it);
        result.verdict = Verdict::Holds;
        break;
      }
      // BadReachable: abstract error trace(s) via the hybrid engine.
      HybridTraceOptions hybrid_opt = opt_.hybrid;
      if (hybrid_opt.cancel == nullptr) hybrid_opt.cancel = cancel;
      traces_n = hybrid_error_traces(enc, sub.net, reach, bad_set,
                                     std::max<size_t>(1, opt_.traces_per_iteration),
                                     hybrid_opt, &it.hybrid);
      if (opt_.save_var_order) saved_order = save_order(mgr, enc, sub);
      if (traces_n.empty()) {
        finish_iteration(it);
        result.note = "hybrid trace engine exhausted candidates";
        break;
      }
    } else if (abs_race.conclusive) {
      // A probe engine found an abstract error trace while the fixpoint was
      // still running: the trace is a real trace of the abstract model, so
      // the obligation is BadReachable without any rings.
      it.reach_status = ReachStatus::BadReachable;
      traces_n.push_back(abs_race.winner == 1 ? atpg_probe.trace : sim_probe);
      if (opt_.save_var_order) saved_order = save_order(mgr, enc, sub);
      RFN_INFO("iter %zu: %s won the abstract race (%zu cycles)", iter,
               abs_race.winner_name.c_str(), traces_n.front().cycles());
    } else {
      // No engine was conclusive: the exact fixpoint ran out of resources
      // and the probes found nothing within their budgets.
      if (opt_.approx_fallback && !deadline.expired() && !should_stop(cancel)) {
        // Future-work fallback: the overlapping-partition approximate
        // traversal may still prove the property when the exact fixpoint
        // cannot complete on a large abstract model.
        it.approx_used = true;
        ApproxReachOptions aopt;
        aopt.block_size = opt_.approx_block_size;
        aopt.overlap = opt_.approx_overlap;
        aopt.time_limit_s = opt_.time_limit_s >= 0.0 ? deadline.remaining_seconds()
                                                     : reach_opt.time_limit_s;
        aopt.max_live_nodes = reach_opt.max_live_nodes;
        const ApproxReachResult approx =
            approx_forward_reach(enc, enc.initial_states(), bad_set, aopt);
        if (approx.status == ApproxStatus::Proved) {
          it.approx_proved = true;
          finish_iteration(it);
          result.verdict = Verdict::Holds;
          result.note = "proved by overlapping-partition approximation";
          break;
        }
        // Inconclusive: there is no error trace to drive Step 4, but the
        // loop can still make progress topologically — pull in the next
        // batch of registers closest to the property and retry. This
        // bottoms out at the full-COI abstraction, where the approximate
        // traversal is as strong as it gets.
        std::vector<bool> have(m_->size(), false);
        for (GateId r : included_) have[r] = true;
        size_t added = 0;
        for (GateId r : closest_registers(*m_, roots, included_.size() + 8)) {
          if (have[r]) continue;
          included_.push_back(r);
          ++added;
        }
        if (added > 0) {
          RFN_INFO("iter %zu: approx inconclusive; blind-refining with %zu registers",
                   iter, added);
          finish_iteration(it);
          continue;
        }
      }
      finish_iteration(it);
      result.note = "abstract fixpoint exceeded resources";
      break;
    }

    std::vector<Trace> traces;
    traces.reserve(traces_n.size());
    for (const Trace& t : traces_n) traces.push_back(sub.trace_to_old(t));
    const Trace& abs_trace = traces.front();
    it.trace_cycles = abs_trace.cycles();
    RFN_INFO("iter %zu: %zu abstract error trace(s), first %zu cycles", iter,
             traces.size(), abs_trace.cycles());

    // --- Step 3: concretize on the original design (engine race) ---
    // Guided sequential ATPG is conclusive both ways (Sat = real trace,
    // Unsat = spurious); random simulation of the original design can only
    // conclude Sat, but a hit is a real error trace found without search.
    ConcretizeResult conc;
    Trace sim_cex;
    std::vector<PortfolioJob> cjobs;
    cjobs.push_back({"guided-atpg", -1.0, [&](const CancelToken& token) {
                       AtpgOptions ao = opt_.concretize_atpg;
                       ao.cancel = &token;
                       conc = traces.size() == 1
                                  ? concretize_trace(*m_, abs_trace, bad_, ao)
                                  : concretize_with_traces(*m_, traces, bad_, ao);
                       return conc.status != AtpgStatus::Abort;
                     }});
    cjobs.push_back({"rand-sim", probe_budget, [&, iter](const CancelToken& token) {
                       sim_cex = random_sim_error_trace(
                           *m_, bad_, opt_.race_sim_cycles,
                           0xC0FFEEULL + iter, &token);
                       return !sim_cex.empty();
                     }});
    const RaceResult conc_race = portfolio.race(cjobs, cancel);
    it.concretize_engine = conc_race.winner_name;
    it.concretize_race_seconds = conc_race.seconds;
    if (conc_race.conclusive && conc_race.winner == 1) {
      it.concretize_status = AtpgStatus::Sat;
      finish_iteration(it);
      result.verdict = Verdict::Fails;
      result.error_trace = sim_cex;
      break;
    }
    it.concretize_status = conc.status;
    if (conc.status == AtpgStatus::Sat) {
      finish_iteration(it);
      result.verdict = Verdict::Fails;
      result.error_trace = conc.trace;
      break;
    }

    // --- Step 4: refine ---
    if (should_stop(cancel)) {
      finish_iteration(it);
      result.note = "cancelled";
      break;
    }
    const std::vector<GateId> crucial = identify_crucial_registers(
        *m_, roots, bad_, included_, abs_trace, opt_.refine, &it.refine);
    finish_iteration(it);
    if (crucial.empty()) {
      result.note = "refinement produced no crucial registers";
      break;
    }
    RFN_INFO("iter %zu: refining with %zu crucial registers", iter, crucial.size());
    for (GateId r : crucial) included_.push_back(r);
  }

  result.final_abstract_regs = included_.size();
  result.seconds = deadline.elapsed_seconds();

  // Joining the monitor thread is the happens-before edge for reading the
  // trip state (and, in the CLI, for exporting the span trace).
  watchdog.stop();
  if (watchdog.tripped()) {
    result.budget_trip.tripped = true;
    result.budget_trip.reason = watchdog.trip_reason();
    result.budget_trip.at_seconds = watchdog.trip_seconds();
    result.budget_trip.bdd_nodes = watchdog.trip_bdd_nodes();
    // A verdict reached before the trip landed is still sound; only an
    // undecided run degrades to resource-out.
    if (result.verdict == Verdict::Unknown) {
      result.verdict = Verdict::ResourceOut;
      result.note = "budget exceeded: " + result.budget_trip.reason;
    }
  }

  MetricsRegistry& reg = MetricsRegistry::global();
  reg.counter("rfn.runs").add(1);
  reg.timer("rfn.run").record(result.seconds);
  switch (result.verdict) {
    case Verdict::Holds: reg.counter("rfn.verdict.holds").add(1); break;
    case Verdict::Fails: reg.counter("rfn.verdict.fails").add(1); break;
    case Verdict::Unknown: reg.counter("rfn.verdict.unknown").add(1); break;
    case Verdict::ResourceOut:
      reg.counter("rfn.verdict.resource_out").add(1);
      break;
  }
  run_span.annotate("verdict", verdict_name(result.verdict));
  return result;
}

}  // namespace rfn
