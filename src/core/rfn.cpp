#include "core/rfn.hpp"

#include <algorithm>

#include "core/abstraction.hpp"
#include "core/session.hpp"

namespace rfn {

bool RfnOptions::engine_enabled(const char* name) const {
  if (engines.empty()) return true;
  return std::find(engines.begin(), engines.end(), name) != engines.end();
}

std::vector<std::string> RfnOptions::validate() const {
  std::vector<std::string> errors;
  // Single source of truth for the portfolio's engine names; the rejection
  // message spells out the whole valid set so a typo is self-correcting.
  static const char* const kEngines[] = {"bdd", "atpg", "sim", "sat", "pdr"};
  static const std::string kEngineList = [] {
    std::string list;
    for (const char* name : kEngines) {
      if (!list.empty()) list += ",";
      list += name;
    }
    return list;
  }();
  for (const std::string& e : engines) {
    const bool known = std::find(std::begin(kEngines), std::end(kEngines), e) !=
                       std::end(kEngines);
    if (!known)
      errors.push_back("unknown engine \"" + e + "\" (valid engines: " +
                       kEngineList + ")");
  }
  if (race_sat_max_depth == 0)
    errors.push_back("race_sat_max_depth must be >= 1");
  if (race_pdr_max_frames == 0)
    errors.push_back("race_pdr_max_frames must be >= 1");
  if (race_pdr_time_s < 0.0)
    errors.push_back("race_pdr_time_s must be >= 0");
  if (max_iterations == 0)
    errors.push_back("max_iterations must be >= 1");
  if (traces_per_iteration == 0)
    errors.push_back("traces_per_iteration must be >= 1");
  if (approx_fallback && approx_block_size == 0)
    errors.push_back("approx_block_size must be >= 1");
  if (approx_fallback && approx_overlap >= approx_block_size)
    errors.push_back(
        "approx_overlap must be smaller than approx_block_size (blocks must "
        "make forward progress)");
  if (budget_bdd_nodes < 0)
    errors.push_back("budget_bdd_nodes must be >= 0 (0 disables the budget)");
  if (budget_mem_mb < 0)
    errors.push_back("budget_mem_mb must be >= 0 (0 disables the budget)");
  if (race_probe_time_s < 0.0)
    errors.push_back("race_probe_time_s must be >= 0");
  if (race_sim_cycles == 0)
    errors.push_back("race_sim_cycles must be >= 1");
  if (reach.max_live_nodes == 0)
    errors.push_back("reach.max_live_nodes must be >= 1");
  if (reach.max_steps == 0)
    errors.push_back("reach.max_steps must be >= 1");
  return errors;
}

RfnVerifier::RfnVerifier(const Netlist& m, GateId bad, RfnOptions opt)
    : m_(&m), bad_(bad), opt_(std::move(opt)) {
  RFN_CHECK(bad < m.size(), "bad signal out of range");
  included_ = initial_abstraction_registers(m, {bad});
}

RfnResult RfnVerifier::run() {
  // One-request path through the session engine (core/session.hpp). Two
  // compatibility details of the historical interface are preserved here:
  // traces_per_iteration == 0 behaves as 1 (the session and CLI entry points
  // reject it via validate() instead of clamping), and the current included
  // set seeds the run, so calling run() again resumes from the previous
  // run's refined abstraction rather than starting over.
  RfnOptions opt = opt_;
  opt.traces_per_iteration = std::max<size_t>(1, opt.traces_per_iteration);
  RunHooks hooks;
  hooks.seed_registers = &included_;
  RfnResult result = run_property(*m_, bad_, opt, hooks);
  included_ = result.final_registers;
  return result;
}

}  // namespace rfn
