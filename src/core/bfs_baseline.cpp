#include "core/bfs_baseline.hpp"

#include <algorithm>

#include "mc/image.hpp"
#include "netlist/analysis.hpp"
#include "netlist/subcircuit.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"

namespace rfn {

BfsBaselineResult bfs_coverage_analysis(const Netlist& m,
                                        const std::vector<GateId>& coverage_regs,
                                        const BfsBaselineOptions& opt) {
  BfsBaselineResult res;
  const Stopwatch watch;
  res.total_states = size_t{1} << coverage_regs.size();

  // The coverage registers themselves plus the closest registers to their
  // next-state logic, up to the size budget.
  std::vector<GateId> included(coverage_regs.begin(), coverage_regs.end());
  std::vector<GateId> bfs_roots;
  for (GateId r : coverage_regs) bfs_roots.push_back(m.reg_data(r));
  for (GateId r : closest_registers(m, bfs_roots, opt.num_registers)) {
    if (included.size() >= opt.num_registers) break;
    if (std::find(included.begin(), included.end(), r) == included.end())
      included.push_back(r);
  }
  const std::vector<GateId> roots(coverage_regs.begin(), coverage_regs.end());
  const Subcircuit sub = extract_abstract_model(m, roots, included);
  res.abstract_regs = sub.net.num_regs();

  BddMgr mgr;
  Encoder enc(mgr, sub.net);
  mgr.set_auto_reorder(opt.dynamic_reordering);
  mgr.set_node_budget(opt.reach.max_live_nodes);
  const Deadline deadline(opt.reach.time_limit_s);
  enc.set_resource_guard(&deadline, opt.reach.max_live_nodes);
  ImageComputer img(enc);
  const ReachResult reach =
      forward_reach(img, enc.initial_states(), mgr.bdd_false(), opt.reach);
  res.reach_status = reach.status;
  if (reach.status != ReachStatus::Proved) {
    res.seconds = watch.seconds();
    return res;  // fixpoint incomplete: nothing can be classified soundly
  }

  std::vector<BddVar> cov_vars, non_cov;
  for (GateId r : coverage_regs) cov_vars.push_back(enc.state_var(sub.to_new(r)));
  for (BddVar v : enc.state_vars())
    if (std::find(cov_vars.begin(), cov_vars.end(), v) == cov_vars.end())
      non_cov.push_back(v);
  const Bdd projected = mgr.exists(reach.reached, non_cov);

  std::vector<bool> assign(mgr.num_vars(), false);
  for (size_t s = 0; s < res.total_states; ++s) {
    for (size_t i = 0; i < cov_vars.size(); ++i) assign[cov_vars[i]] = (s >> i) & 1;
    if (!mgr.eval(projected, assign)) ++res.unreachable;
  }
  res.seconds = watch.seconds();
  return res;
}

}  // namespace rfn
