#include "mincut/maxflow.hpp"

#include <algorithm>
#include <deque>

#include "util/log.hpp"

namespace rfn {

MaxFlow::MaxFlow(size_t num_nodes) : graph_(num_nodes) {}

size_t MaxFlow::add_edge(size_t u, size_t v, int64_t capacity) {
  RFN_CHECK(u < graph_.size() && v < graph_.size(), "edge endpoint out of range");
  // Paired-edge convention: edge 2k is the forward edge, 2k+1 its reverse;
  // the reverse of edge e is always e^1.
  const size_t idx = edges_.size();
  graph_[u].push_back(idx);
  edges_.push_back({v, capacity});
  graph_[v].push_back(idx + 1);
  edges_.push_back({u, 0});
  return idx;
}

bool MaxFlow::bfs(size_t s, size_t t) {
  level_.assign(graph_.size(), -1);
  std::deque<size_t> q{s};
  level_[s] = 0;
  while (!q.empty()) {
    const size_t u = q.front();
    q.pop_front();
    for (size_t ei : graph_[u]) {
      const Edge& e = edges_[ei];
      if (e.cap > 0 && level_[e.to] < 0) {
        level_[e.to] = level_[u] + 1;
        q.push_back(e.to);
      }
    }
  }
  return level_[t] >= 0;
}

int64_t MaxFlow::dfs(size_t u, size_t t, int64_t pushed) {
  if (u == t) return pushed;
  for (size_t& i = iter_[u]; i < graph_[u].size(); ++i) {
    const size_t ei = graph_[u][i];
    Edge& e = edges_[ei];
    if (e.cap <= 0 || level_[e.to] != level_[u] + 1) continue;
    const int64_t got = dfs(e.to, t, std::min(pushed, e.cap));
    if (got > 0) {
      e.cap -= got;
      edges_[ei ^ 1].cap += got;
      return got;
    }
  }
  return 0;
}

int64_t MaxFlow::run(size_t s, size_t t) {
  RFN_CHECK(s != t, "maxflow source == sink");
  int64_t flow = 0;
  while (bfs(s, t)) {
    iter_.assign(graph_.size(), 0);
    while (int64_t pushed = dfs(s, t, kInfCap)) flow += pushed;
  }
  return flow;
}

std::vector<bool> MaxFlow::min_cut_source_side(size_t s) const {
  std::vector<bool> reach(graph_.size(), false);
  std::deque<size_t> q{s};
  reach[s] = true;
  while (!q.empty()) {
    const size_t u = q.front();
    q.pop_front();
    for (size_t ei : graph_[u]) {
      const Edge& e = edges_[ei];
      if (e.cap > 0 && !reach[e.to]) {
        reach[e.to] = true;
        q.push_back(e.to);
      }
    }
  }
  return reach;
}

}  // namespace rfn
