#include "mincut/mincut.hpp"

#include <algorithm>

#include "mincut/maxflow.hpp"
#include "netlist/analysis.hpp"

namespace rfn {

std::vector<bool> free_cut_design(const Netlist& n) {
  // Gates in the transitive fanin of the registers' data inputs...
  std::vector<GateId> data_roots;
  data_roots.reserve(n.num_regs());
  for (GateId r : n.regs()) data_roots.push_back(n.reg_data(r));
  const std::vector<bool> fanin = comb_fanin_cone(n, data_roots);

  // ...intersected with the transitive fanout of the register outputs.
  std::vector<bool> fanout(n.size(), false);
  const auto fanouts = fanout_lists(n);
  std::vector<GateId> stack;
  for (GateId r : n.regs()) {
    fanout[r] = true;
    stack.push_back(r);
  }
  while (!stack.empty()) {
    const GateId g = stack.back();
    stack.pop_back();
    for (GateId fo : fanouts[g]) {
      if (!n.is_comb(fo) || fanout[fo]) continue;  // stop at registers
      fanout[fo] = true;
      stack.push_back(fo);
    }
  }

  std::vector<bool> fc(n.size(), false);
  for (GateId g = 0; g < n.size(); ++g)
    fc[g] = n.is_reg(g) || (n.is_comb(g) && fanin[g] && fanout[g]);
  return fc;
}

MinCutResult compute_mincut_design(const Netlist& n) {
  MinCutResult result;

  std::vector<GateId> data_roots;
  for (GateId r : n.regs()) data_roots.push_back(n.reg_data(r));
  const std::vector<bool> cone = comb_fanin_cone(n, data_roots);
  const std::vector<bool> fc = free_cut_design(n);

  for (GateId i : n.inputs())
    if (cone[i]) ++result.cone_inputs;

  // Flow network. Node-splitting: every cuttable signal v (a primary input
  // or a non-FC combinational gate in the cone) becomes v_in -> v_out with
  // capacity 1; wires are infinite. FC members are merged into the sink.
  //   node 2g   = g_in
  //   node 2g+1 = g_out
  //   source S, sink T appended at the end.
  const size_t S = 2 * n.size();
  const size_t T = S + 1;
  MaxFlow flow(T + 1);
  auto g_in = [](GateId g) { return static_cast<size_t>(2 * g); };
  auto g_out = [](GateId g) { return static_cast<size_t>(2 * g + 1); };

  std::vector<bool> in_network(n.size(), false);
  for (GateId g = 0; g < n.size(); ++g) {
    if (!cone[g] || fc[g]) continue;  // FC handled via sink edges
    if (n.is_input(g)) {
      in_network[g] = true;
      flow.add_edge(S, g_in(g), MaxFlow::kInfCap);
      flow.add_edge(g_in(g), g_out(g), 1);
    } else if (n.is_comb(g)) {
      in_network[g] = true;
      flow.add_edge(g_in(g), g_out(g), 1);
    }
    // Constants are ignored: they are freely available in MC.
  }
  // Wires. An edge from a cuttable signal u into gate g: if g is cuttable,
  // u_out -> g_in; if g is in FC (or is a register data input), u_out -> T.
  for (GateId g = 0; g < n.size(); ++g) {
    if (!cone[g] && !n.is_reg(g)) continue;
    if (n.is_reg(g)) {
      const GateId u = n.reg_data(g);
      if (in_network[u]) flow.add_edge(g_out(u), T, MaxFlow::kInfCap);
      continue;
    }
    if (!n.is_comb(g)) continue;
    for (GateId u : n.fanins(g)) {
      if (!in_network[u]) continue;  // FC members, registers, constants
      if (fc[g]) {
        flow.add_edge(g_out(u), T, MaxFlow::kInfCap);
      } else if (in_network[g]) {
        flow.add_edge(g_out(u), g_in(g), MaxFlow::kInfCap);
      }
    }
  }

  result.cut_size = static_cast<size_t>(flow.run(S, T));

  // Cut vertices: in-node on the source side, out-node on the sink side.
  const std::vector<bool> reach = flow.min_cut_source_side(S);
  for (GateId g = 0; g < n.size(); ++g) {
    if (!in_network[g]) continue;
    if (reach[g_in(g)] && !reach[g_out(g)]) result.cut_signals.push_back(g);
  }
  RFN_CHECK(result.cut_signals.size() == result.cut_size,
            "cut reconstruction mismatch: %zu signals for flow %zu",
            result.cut_signals.size(), result.cut_size);

  // Seed the extraction with the registers themselves as well: a register
  // whose data input is itself a cut signal would otherwise be dropped.
  std::vector<GateId> roots = data_roots;
  for (GateId r : n.regs()) roots.push_back(r);
  result.mc = extract_with_cut(n, roots, result.cut_signals);
  return result;
}

}  // namespace rfn
