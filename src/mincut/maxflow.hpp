#pragma once
// Dinic max-flow on a unit/infinite-capacity network.
//
// Used to compute minimum vertex cuts on netlist DAGs (node-splitting
// reduction). Capacities are small integers; kInfCap marks uncuttable edges.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rfn {

class MaxFlow {
 public:
  static constexpr int64_t kInfCap = INT64_MAX / 4;

  explicit MaxFlow(size_t num_nodes);

  /// Adds a directed edge u->v with the given capacity. Returns the edge
  /// index (for querying flow/saturation later).
  size_t add_edge(size_t u, size_t v, int64_t capacity);

  /// Computes the maximum flow from s to t.
  int64_t run(size_t s, size_t t);

  /// After run(): residual capacity of an edge.
  int64_t residual(size_t edge) const { return edges_[edge].cap; }

  /// After run(): the set of nodes reachable from s in the residual graph
  /// (the source side of a minimum cut).
  std::vector<bool> min_cut_source_side(size_t s) const;

  size_t num_nodes() const { return graph_.size(); }

 private:
  struct Edge {
    size_t to;
    int64_t cap;
  };

  bool bfs(size_t s, size_t t);
  int64_t dfs(size_t u, size_t t, int64_t pushed);

  std::vector<std::vector<size_t>> graph_;  // node -> edge indices
  std::vector<Edge> edges_;
  std::vector<int> level_;
  std::vector<size_t> iter_;
};

}  // namespace rfn
