#pragma once
// Min-cut design computation (paper Section 2.2, following Ho et al. [8]).
//
// Given an abstract model N, compute:
//   * the free-cut design FC: the registers of N plus the gates lying in the
//     intersection of the transitive fanin and the transitive fanout of the
//     registers;
//   * the min-cut design MC: the subcircuit of N that contains FC and has
//     the fewest primary inputs. Its inputs are internal signals of N (the
//     "cut"), so pre-image computation on MC sees a couple of orders of
//     magnitude fewer input variables than on N itself.
//
// The minimization is a minimum vertex cut between N's primary inputs and
// FC, solved by node-splitting max-flow.

#include <vector>

#include "netlist/netlist.hpp"
#include "netlist/subcircuit.hpp"

namespace rfn {

struct MinCutResult {
  /// MC as a subcircuit of N (old ids are N's ids). Its pseudo_inputs are
  /// the cut signals plus any of N's own primary inputs that survived.
  Subcircuit mc;
  /// Cut signals in N ids (signals of N that became inputs of MC). A cube
  /// mentioning any of these is a "min-cut cube"; one confined to N's
  /// registers and primary inputs is a "no-cut cube".
  std::vector<GateId> cut_signals;
  /// Number of primary inputs N itself has in the registers' fanin cone —
  /// what pre-image would face without the cut.
  size_t cone_inputs = 0;
  /// Max-flow value == number of MC primary inputs that are true cuts.
  size_t cut_size = 0;
};

/// Gates of the free-cut design of `n` (membership mask; registers
/// included).
std::vector<bool> free_cut_design(const Netlist& n);

/// Computes the min-cut design of abstract model `n`.
MinCutResult compute_mincut_design(const Netlist& n);

}  // namespace rfn
