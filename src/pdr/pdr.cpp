#include "pdr/pdr.hpp"

#include <algorithm>
#include <queue>
#include <utility>

#include "netlist/analysis.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/stopwatch.hpp"
#include "util/trace.hpp"

namespace rfn {

using sat::Lit;

const char* to_string(PdrStatus s) {
  switch (s) {
    case PdrStatus::Holds: return "holds";
    case PdrStatus::Cex: return "cex";
    case PdrStatus::FrameLimit: return "frame-limit";
    case PdrStatus::Cancelled: return "cancelled";
  }
  return "?";
}

Pdr::Pdr(const Netlist& m, GateId bad, std::vector<GateId> included)
    : m_(&m), bad_(bad), included_(std::move(included)) {
  RFN_CHECK(bad_ < m_->size(), "PDR bad signal out of range");
  RFN_CHECK(std::is_sorted(included_.begin(), included_.end()),
            "PDR included register set must be sorted");
}

Lit Pdr::fresh() { return Lit::make(solver_.new_var()); }

Lit Pdr::const_lit(bool value) {
  if (true_lit_ == sat::kUndefLit) {
    true_lit_ = fresh();
    solver_.add_clause({true_lit_});
  }
  return value ? true_lit_ : ~true_lit_;
}

void Pdr::encode() {
  // Cone: everything bad depends on combinationally, plus — through every
  // *included* register — that register's data cone (its next-state
  // function). Registers outside `included` stop the traversal: they are
  // free pseudo-inputs, exactly the abstraction's semantics.
  std::vector<bool> cone(m_->size(), false);
  std::vector<GateId> work{bad_};
  cone[bad_] = true;
  while (!work.empty()) {
    const GateId g = work.back();
    work.pop_back();
    if (m_->type(g) == GateType::Reg) {
      if (!std::binary_search(included_.begin(), included_.end(), g)) continue;
      const GateId d = m_->reg_data(g);
      if (!cone[d]) {
        cone[d] = true;
        work.push_back(d);
      }
      continue;
    }
    for (const GateId fi : m_->fanins(g)) {
      if (!cone[fi]) {
        cone[fi] = true;
        work.push_back(fi);
      }
    }
  }

  for (const GateId r : m_->regs()) {
    if (!cone[r]) continue;
    if (std::binary_search(included_.begin(), included_.end(), r))
      state_regs_.push_back(r);
    else
      pseudo_regs_.push_back(r);
  }
  for (const GateId g : m_->inputs())
    if (g < m_->size() && cone[g]) cone_inputs_.push_back(g);

  cur_.assign(m_->size(), sat::kUndefLit);
  for (const GateId g : topo_order(*m_))
    if (cone[g]) encode_gate(g);
  bad_lit_ = cur_[bad_];
  RFN_CHECK(bad_lit_ != sat::kUndefLit, "PDR bad signal not materialized");

  // F_0 = I: binary-initialized state registers pinned behind act_0.
  const Lit a0 = act(0);
  for (const GateId r : state_regs_) {
    switch (m_->reg_init(r)) {
      case Tri::F: solver_.add_clause({~a0, ~cur_[r]}); break;
      case Tri::T: solver_.add_clause({~a0, cur_[r]}); break;
      case Tri::X: break;  // unconstrained either way
    }
  }
  delta_.resize(1);
  encoded_ = true;
}

void Pdr::encode_gate(GateId g) {
  const auto add2 = [this](Lit a, Lit b) { solver_.add_clause({a, b}); };
  const auto add3 = [this](Lit a, Lit b, Lit c) { solver_.add_clause({a, b, c}); };
  const auto add_and = [&](Lit out, std::vector<Lit> ins) {
    std::vector<Lit> big;
    big.reserve(ins.size() + 1);
    for (const Lit in : ins) {
      add2(~out, in);  // out -> in
      big.push_back(~in);
    }
    big.push_back(out);  // all ins -> out
    solver_.add_clause(std::move(big));
  };
  const auto add_xor = [&](Lit out, Lit a, Lit b) {
    add3(~out, a, b);
    add3(~out, ~a, ~b);
    add3(out, ~a, b);
    add3(out, a, ~b);
  };

  switch (m_->type(g)) {
    case GateType::Input:
    case GateType::Reg:  // state and pseudo-input registers alike: free vars
      cur_[g] = fresh();
      break;
    case GateType::Const0: cur_[g] = const_lit(false); break;
    case GateType::Const1: cur_[g] = const_lit(true); break;
    case GateType::Buf: cur_[g] = cur_[m_->fanins(g)[0]]; break;
    case GateType::Not: cur_[g] = ~cur_[m_->fanins(g)[0]]; break;
    case GateType::Mux: {
      const Lit v = fresh();
      cur_[g] = v;
      const auto& fi = m_->fanins(g);
      const Lit sel = cur_[fi[0]], d0 = cur_[fi[1]], d1 = cur_[fi[2]];
      add3(~sel, ~d1, v);
      add3(~sel, d1, ~v);
      add3(sel, ~d0, v);
      add3(sel, d0, ~v);
      add3(~d0, ~d1, v);
      add3(d0, d1, ~v);
      break;
    }
    default: {  // And/Or/Nand/Nor/Xor/Xnor
      const Lit v = fresh();
      cur_[g] = v;
      std::vector<Lit> ins;
      ins.reserve(m_->fanins(g).size());
      for (const GateId fi : m_->fanins(g)) {
        RFN_CHECK(cur_[fi] != sat::kUndefLit, "PDR cone fanin not materialized");
        ins.push_back(cur_[fi]);
      }
      switch (m_->type(g)) {
        case GateType::And: add_and(v, ins); break;
        case GateType::Nand: add_and(~v, ins); break;
        case GateType::Or:
          for (Lit& in : ins) in = ~in;
          add_and(~v, ins);
          break;
        case GateType::Nor:
          for (Lit& in : ins) in = ~in;
          add_and(v, ins);
          break;
        case GateType::Xor: add_xor(v, ins[0], ins[1]); break;
        case GateType::Xnor: add_xor(~v, ins[0], ins[1]); break;
        default: RFN_CHECK(false, "unexpected gate type in PDR encoding");
      }
      break;
    }
  }
}

Lit Pdr::next_lit(const Literal& l) const {
  const Lit d = cur_[m_->reg_data(l.signal)];
  RFN_CHECK(d != sat::kUndefLit, "PDR next-state literal not materialized");
  return l.value ? d : ~d;
}

Lit Pdr::act(size_t level) {
  while (act_.size() <= level) act_.push_back(fresh());
  return act_[level];
}

void Pdr::frame_assumps(size_t level, std::vector<Lit>* out) const {
  for (size_t j = level; j <= k_; ++j) out->push_back(act_[j]);
}

bool Pdr::init_compatible(const Cube& cube) const {
  for (const Literal& l : cube) {
    const Tri init = m_->reg_init(l.signal);
    if (init == Tri::X) continue;
    if ((init == Tri::T) != l.value) return false;
  }
  return true;
}

bool Pdr::has_init_contradiction(const Cube& cube) const {
  return !init_compatible(cube);
}

Cube Pdr::model_state() const {
  Cube s;
  s.reserve(state_regs_.size());
  for (const GateId r : state_regs_)
    cube_add(s, {r, solver_.lit_value(cur_[r]) == sat::LBool::True});
  return s;
}

Cube Pdr::model_inputs() const {
  Cube in;
  in.reserve(pseudo_regs_.size() + cone_inputs_.size());
  for (const GateId r : pseudo_regs_)
    cube_add(in, {r, solver_.lit_value(cur_[r]) == sat::LBool::True});
  for (const GateId g : cone_inputs_)
    cube_add(in, {g, solver_.lit_value(cur_[g]) == sat::LBool::True});
  return in;
}

void Pdr::add_frame_clause(const Cube& cube, size_t level) {
  if (delta_.size() <= level) delta_.resize(level + 1);
  delta_[level].push_back(cube);
  std::vector<Lit> clause;
  clause.reserve(cube.size() + 1);
  clause.push_back(~act(level));
  for (const Literal& l : cube)
    clause.push_back(l.value ? ~cur_[l.signal] : cur_[l.signal]);
  solver_.add_clause(std::move(clause));
}

Cube Pdr::generalize(Cube cube, size_t frame, Lit guard,
                     const CancelToken* cancel) {
  const size_t original = cube.size();
  // Pass 1: keep only the literals whose next-state assumptions the
  // refutation's final conflict actually used. Dropping to a subset keeps
  // the query UNSAT (fewer s' assumptions were already enough), and the
  // fixed ¬s guard only ever gets logically weaker than ¬g, so the stronger
  // clause is blocked a fortiori.
  const auto core_filter = [this](const Cube& c) {
    std::vector<uint32_t> core;
    for (const Lit l : solver_.final_conflict()) core.push_back(l.index());
    std::sort(core.begin(), core.end());
    Cube kept;
    for (const Literal& l : c)
      if (std::binary_search(core.begin(), core.end(), next_lit(l).index()))
        kept.push_back(l);
    return kept;
  };
  const auto restore_init_literal = [this](const Cube& from, Cube* to) {
    if (has_init_contradiction(*to)) return;
    for (const Literal& l : from) {
      const Tri init = m_->reg_init(l.signal);
      if (init != Tri::X && (init == Tri::T) != l.value) {
        cube_add(*to, l);
        return;
      }
    }
    RFN_CHECK(false, "PDR blocked cube lost initial-state disjointness");
  };

  Cube g = core_filter(cube);
  restore_init_literal(cube, &g);

  // Pass 2: greedy literal dropping, re-querying relative induction for
  // each candidate subcube (same frame assumptions, same ¬s guard).
  for (size_t i = 0; i < g.size() && g.size() > 1;) {
    Cube h;
    h.reserve(g.size() - 1);
    for (size_t j = 0; j < g.size(); ++j)
      if (j != i) h.push_back(g[j]);
    if (!has_init_contradiction(h)) {
      ++i;
      continue;
    }
    std::vector<Lit> assumps;
    frame_assumps(frame - 1, &assumps);
    assumps.push_back(guard);
    for (const Literal& l : h) assumps.push_back(next_lit(l));
    const sat::Solver::Result r = solver_.solve(assumps, cancel);
    if (r == sat::Solver::Result::Undef) break;  // cancelled: keep what we have
    if (r == sat::Solver::Result::Unsat) {
      Cube shrunk = core_filter(h);
      restore_init_literal(h, &shrunk);
      g = std::move(shrunk);
      // g may have shrunk past position i; do not advance.
      if (i >= g.size()) i = 0;
    } else {
      ++i;
    }
  }
  stats_.generalization_drops += original - g.size();
  return g;
}

bool Pdr::block(Obligation root, PdrResult* res, const PdrOptions& opt,
                const CancelToken* cancel) {
  obligations_.clear();
  obligations_.push_back(std::move(root));

  // Min-frame first; ties go to the most recently created obligation so the
  // search extends the current predecessor chain depth-first.
  using Entry = std::pair<size_t, size_t>;  // (frame, obligation index)
  const auto later = [](const Entry& a, const Entry& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(later)> queue(later);
  queue.push({obligations_.front().frame, 0});

  while (!queue.empty()) {
    if (should_stop(cancel)) {
      res->status = PdrStatus::Cancelled;
      return false;
    }
    ++stats_.obligations;
    if (opt.max_obligations > 0 && stats_.obligations > opt.max_obligations) {
      res->status = PdrStatus::FrameLimit;
      return false;
    }
    const auto [frame, idx] = queue.top();
    queue.pop();

    if (frame == 0 || init_compatible(obligations_[idx].state)) {
      // The cube contains an initial state (it is a full assignment, and no
      // literal contradicts a binary reset value): the predecessor chain is
      // a real counterexample of the model.
      build_trace(static_cast<int>(idx), res);
      res->status = PdrStatus::Cex;
      return false;
    }

    // Relative induction: F_{frame-1} ∧ ¬s ∧ T ∧ s'. ¬s lives behind a
    // fresh guard assumed for this obligation's queries only, retired with
    // a unit once the obligation is resolved.
    const Cube s = obligations_[idx].state;
    const Lit guard = fresh();
    std::vector<Lit> not_s;
    not_s.reserve(s.size() + 1);
    not_s.push_back(~guard);
    for (const Literal& l : s)
      not_s.push_back(l.value ? ~cur_[l.signal] : cur_[l.signal]);
    solver_.add_clause(std::move(not_s));

    std::vector<Lit> assumps;
    frame_assumps(frame - 1, &assumps);
    assumps.push_back(guard);
    for (const Literal& l : s) assumps.push_back(next_lit(l));
    const sat::Solver::Result r = solver_.solve(assumps, cancel);

    if (r == sat::Solver::Result::Undef) {
      solver_.add_clause({~guard});
      res->status = PdrStatus::Cancelled;
      return false;
    }
    if (r == sat::Solver::Result::Sat) {
      // A predecessor inside F_{frame-1} reaches s: block it first, then
      // revisit s at the same frame.
      Obligation pred;
      pred.state = model_state();
      pred.inputs = model_inputs();
      pred.frame = frame - 1;
      pred.succ = static_cast<int>(idx);
      solver_.add_clause({~guard});
      obligations_.push_back(std::move(pred));
      queue.push({frame - 1, obligations_.size() - 1});
      queue.push({frame, idx});
      continue;
    }

    // UNSAT: s is unreachable from F_{frame-1}; generalize and learn.
    Cube g = generalize(s, frame, guard, cancel);
    solver_.add_clause({~guard});
    add_frame_clause(g, frame);
    ++stats_.clauses;
    // Push the obligation forward: re-examining s at frame+1 drives the
    // proof deeper and finds long counterexamples sooner (Eén/Mishchenko).
    if (frame < k_) queue.push({frame + 1, idx});
  }
  return true;
}

bool Pdr::propagate(PdrResult* res, const CancelToken* cancel) {
  for (size_t i = 1; i + 1 <= k_; ++i) {
    std::vector<Cube> cubes = std::move(delta_[i]);
    delta_[i].clear();
    std::vector<Cube> kept;
    for (size_t c = 0; c < cubes.size(); ++c) {
      if (should_stop(cancel)) {
        // Restore the unprocessed tail so the frame store stays consistent.
        for (size_t rest = c; rest < cubes.size(); ++rest)
          kept.push_back(std::move(cubes[rest]));
        delta_[i] = std::move(kept);
        res->status = PdrStatus::Cancelled;
        return true;
      }
      std::vector<Lit> assumps;
      frame_assumps(i, &assumps);
      for (const Literal& l : cubes[c]) assumps.push_back(next_lit(l));
      const sat::Solver::Result r = solver_.solve(assumps, cancel);
      if (r == sat::Solver::Result::Unsat) {
        // F_i ∧ T ⇒ ¬cube': the clause holds one frame further out.
        add_frame_clause(cubes[c], i + 1);
        ++stats_.pushed_clauses;
      } else {
        kept.push_back(std::move(cubes[c]));
        if (r == sat::Solver::Result::Undef) {
          for (size_t rest = c + 1; rest < cubes.size(); ++rest)
            kept.push_back(std::move(cubes[rest]));
          delta_[i] = std::move(kept);
          res->status = PdrStatus::Cancelled;
          return true;
        }
      }
    }
    delta_[i] = std::move(kept);
    if (delta_[i].empty()) {
      // F_i = F_{i+1}: the clauses at levels > i are an inductive invariant
      // (initiation by construction, consecution by the frame invariant,
      // safety because F_{i+1} ∧ bad was refuted before frame i+1 opened).
      extract_invariant(i + 1, res);
      res->status = PdrStatus::Holds;
      return true;
    }
  }
  return false;
}

void Pdr::extract_invariant(size_t level, PdrResult* res) const {
  res->scope = state_regs_;
  for (size_t j = level; j < delta_.size(); ++j) {
    for (const Cube& cube : delta_[j]) {
      std::vector<int32_t> clause;
      clause.reserve(cube.size());
      for (const Literal& l : cube) {
        const auto it =
            std::lower_bound(res->scope.begin(), res->scope.end(), l.signal);
        const auto idx = static_cast<int32_t>(it - res->scope.begin()) + 1;
        // The cube excludes states where the register carries l.value, so
        // the clause carries the opposite polarity.
        clause.push_back(l.value ? -idx : idx);
      }
      std::sort(clause.begin(), clause.end(), [](int32_t a, int32_t b) {
        return (a < 0 ? -a : a) < (b < 0 ? -b : b);
      });
      res->clauses.push_back(std::move(clause));
    }
  }
  std::sort(res->clauses.begin(), res->clauses.end());
  res->clauses.erase(std::unique(res->clauses.begin(), res->clauses.end()),
                     res->clauses.end());
}

void Pdr::build_trace(int leaf, PdrResult* res) const {
  res->trace.steps.clear();
  for (int idx = leaf; idx != -1; idx = obligations_[idx].succ) {
    const Obligation& ob = obligations_[idx];
    res->trace.steps.push_back({ob.state, ob.inputs});
  }
}

PdrResult Pdr::run(const PdrOptions& opt, const CancelToken* cancel) {
  Span span("pdr.run");
  const Stopwatch watch;
  const PdrStats before = stats_;
  if (!encoded_) encode();

  PdrResult res;
  for (;;) {
    if (should_stop(cancel)) {
      res.status = PdrStatus::Cancelled;
      break;
    }
    // Is bad reachable from F_K (some state + input valuation raises it)?
    std::vector<Lit> assumps;
    frame_assumps(k_, &assumps);
    assumps.push_back(bad_lit_);
    const sat::Solver::Result r = solver_.solve(assumps, cancel);
    if (r == sat::Solver::Result::Undef) {
      res.status = PdrStatus::Cancelled;
      break;
    }
    if (r == sat::Solver::Result::Sat) {
      Obligation root;
      root.state = model_state();
      root.inputs = model_inputs();
      root.frame = k_;
      root.succ = -1;
      if (!block(std::move(root), &res, opt, cancel)) break;
      continue;  // blocked: re-query bad at the same frame
    }
    // F_K ∧ bad is UNSAT: open the next frame and propagate clauses.
    if (k_ + 1 > opt.max_frames) {
      res.status = PdrStatus::FrameLimit;
      break;
    }
    ++k_;
    act(k_);
    if (delta_.size() <= k_) delta_.resize(k_ + 1);
    stats_.frames = k_;
    if (propagate(&res, cancel)) break;
  }

  res.stats = stats_;
  // Flush this run's activity into the registry once, at the boundary.
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.counter("pdr.runs").add(1);
  reg.counter("pdr.obligations").add(stats_.obligations - before.obligations);
  reg.counter("pdr.clauses").add(stats_.clauses - before.clauses);
  reg.counter("pdr.pushed_clauses")
      .add(stats_.pushed_clauses - before.pushed_clauses);
  reg.counter("pdr.generalization_drops")
      .add(stats_.generalization_drops - before.generalization_drops);
  reg.gauge("pdr.frames").record_max(static_cast<int64_t>(k_));
  reg.gauge("pdr.heap_bytes").record_max(static_cast<int64_t>(solver_.heap_bytes()));
  reg.timer("pdr.run").record(watch.seconds());
  span.annotate("status", to_string(res.status));
  span.annotate("frames", static_cast<double>(k_));
  RFN_INFO("pdr: %s after %zu frames (%llu obligations, %llu clauses)",
           to_string(res.status), k_,
           static_cast<unsigned long long>(stats_.obligations),
           static_cast<unsigned long long>(stats_.clauses));
  return res;
}

}  // namespace rfn
