#pragma once
// IC3/PDR: the portfolio's unbounded clause-learning prover (fifth engine).
//
// Property-directed reachability in the Bradley / Eén-Mishchenko
// formulation, specialized to this codebase's abstraction semantics: the
// engine runs on the ORIGINAL design restricted to an `included` register
// set — registers inside `included` are state, registers in the property
// cone outside it are free pseudo-inputs, exactly the pseudo-input
// semantics of netlist/subcircuit.hpp and the sat/cnf.hpp enable-assumption
// BMC. A Holds on the abstraction is therefore a Holds on the design
// (over-approximation), and with `included` = all registers the verdict is
// concrete in both polarities.
//
// Machinery (one incremental sat::Solver per Pdr instance):
//   * one copy of the transition logic: current-state variables for the
//     state registers, the combinational cone of `bad` and of every state
//     register's data function; the next-state literal of register r is
//     simply the cone literal of data(r) — no second frame is unrolled.
//   * frame clauses in delta encoding with per-level activation literals:
//     a clause learned at level i is added as (¬act_i ∨ clause) and F_j is
//     asserted by assuming {act_j..act_K}; pushing a clause re-adds it
//     under the next level's guard (the stale copy stays sound: it only
//     ever activates for frames where the clause is already known to hold).
//     act_0 guards the initial-state cube (binary-init registers pinned).
//   * relative-induction queries F_{i-1} ∧ ¬s ∧ T ∧ s′ under assumptions;
//     ¬s is a temporary clause behind a fresh guard, retired with a unit.
//   * cube generalization: first the solver's final_conflict() core over
//     the s′ assumption literals, then greedy literal dropping — always
//     keeping the cube syntactically disjoint from the initial states (at
//     least one literal contradicting a binary reset value).
//   * a proof-obligation priority queue (lowest frame first) whose
//     predecessor chain doubles as the counterexample trace; the main loop
//     and every solver call poll the CancelToken cooperatively.
//
// On convergence (some delta level empties after clause propagation) the
// inductive frame is returned both as cubes and pre-mapped into the
// rfn-cert-v1 clause convention — ±(index into the sorted register scope
// + 1) — so core/certificate.cpp can emit a witness the independent
// `rfn_check` audits with zero checker changes.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "sat/solver.hpp"
#include "util/cancel.hpp"

namespace rfn {

enum class PdrStatus : uint8_t {
  Holds,       // converged: inductive invariant, unbounded proof
  Cex,         // real counterexample trace of the (abstract) model
  FrameLimit,  // exhausted max_frames without converging
  Cancelled,   // lost the race / watchdog
};

const char* to_string(PdrStatus s);

struct PdrOptions {
  /// Frame bound; the run returns FrameLimit instead of growing past it.
  size_t max_frames = 64;
  /// Cap on proof obligations examined per run (0 = unlimited); a
  /// safety-valve against pathological oscillation, returns FrameLimit.
  uint64_t max_obligations = 0;
};

struct PdrStats {
  size_t frames = 0;              // highest frame opened
  uint64_t obligations = 0;       // proof obligations examined
  uint64_t clauses = 0;           // frame clauses learned
  uint64_t generalization_drops = 0;  // literals removed from blocked cubes
  uint64_t pushed_clauses = 0;    // clauses propagated forward
};

struct PdrResult {
  PdrStatus status = PdrStatus::Cancelled;
  /// Cex: counterexample in original-design ids with the same literal
  /// placement as sat/cnf.hpp decode_trace — state registers in the state
  /// cubes, pseudo-input registers and primary inputs in the input cubes —
  /// so Step-3 concretization and certify_error_trace consume it unchanged.
  Trace trace;
  /// Holds: the invariant's register scope (sorted ascending) and its
  /// clauses in the rfn-cert-v1 convention (±(index into scope + 1)).
  std::vector<GateId> scope;
  std::vector<std::vector<int32_t>> clauses;
  PdrStats stats;
};

/// Single-owner like a BddMgr or SatBmc: the instance may move between
/// portfolio worker threads across races, but no two concurrent jobs may
/// share it.
class Pdr {
 public:
  /// `included` must be sorted ascending (the session's invariant for
  /// register sets). Encoding happens lazily on the first run() call so a
  /// cancelled race never pays for it.
  Pdr(const Netlist& m, GateId bad, std::vector<GateId> included);

  PdrResult run(const PdrOptions& opt = {}, const CancelToken* cancel = nullptr);

  /// State registers of the encoded model: bad's register cone intersected
  /// with `included` (sorted). Valid after run().
  const std::vector<GateId>& state_registers() const { return state_regs_; }

 private:
  struct Obligation {
    Cube state;       // full assignment over the state registers
    Cube inputs;      // inputs driving this state into its successor
    size_t frame = 0;
    int succ = -1;    // index into obligations_ (-1 = the bad-cube root)
  };

  void encode();
  sat::Lit fresh();
  sat::Lit const_lit(bool value);
  void encode_gate(GateId g);
  sat::Lit cur(GateId g) const { return cur_[g]; }
  sat::Lit next_lit(const Literal& l) const;
  sat::Lit act(size_t level);
  /// Assumptions asserting F_level: {act_level .. act_K}.
  void frame_assumps(size_t level, std::vector<sat::Lit>* out) const;

  bool init_compatible(const Cube& cube) const;
  bool has_init_contradiction(const Cube& cube) const;
  Cube model_state() const;
  Cube model_inputs() const;
  void add_frame_clause(const Cube& cube, size_t level);
  /// Generalizes a blocked cube via UNSAT core + literal dropping; `guard`
  /// is the active ¬s temporary. Returns the (sub)cube actually blocked.
  Cube generalize(Cube cube, size_t frame, sat::Lit guard,
                  const CancelToken* cancel);
  /// Blocks the root obligation or finds a counterexample (filled into
  /// `res`). Returns false on cancellation/limits (status already set).
  bool block(Obligation root, PdrResult* res, const PdrOptions& opt,
             const CancelToken* cancel);
  /// Clause propagation after opening frame K; true when some level
  /// emptied (invariant extracted into `res`).
  bool propagate(PdrResult* res, const CancelToken* cancel);
  void extract_invariant(size_t level, PdrResult* res) const;
  void build_trace(int leaf, PdrResult* res) const;

  const Netlist* m_;
  GateId bad_;
  std::vector<GateId> included_;

  sat::Solver solver_;
  bool encoded_ = false;
  std::vector<sat::Lit> cur_;        // per-gate cone literal (kUndefLit = out)
  sat::Lit true_lit_ = sat::kUndefLit;
  sat::Lit bad_lit_ = sat::kUndefLit;
  std::vector<GateId> state_regs_;   // cone ∩ included, sorted
  std::vector<GateId> pseudo_regs_;  // cone \ included, sorted
  std::vector<GateId> cone_inputs_;  // primary inputs in the cone, sorted

  std::vector<sat::Lit> act_;              // activation literal per level
  std::vector<std::vector<Cube>> delta_;   // frame cubes by (current) level
  size_t k_ = 0;                           // highest open frame

  std::vector<Obligation> obligations_;
  PdrStats stats_;
};

}  // namespace rfn
