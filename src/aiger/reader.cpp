// AIGER 1.9 parser + elaboration into the gate-level Netlist.
//
// Strictness contract (see aiger.hpp): every malformed input returns false
// with a one-line diagnostic — the reader never aborts the process, because
// corpus harnesses feed it untrusted benchmark files. Elaboration goes
// through NetBuilder so and-inverter pairs land as structurally-hashed
// And/Not gates; the creation order below (inputs, latches, then and gates
// in file order resolving rhs0 before rhs1, then latch next-states,
// constraints, bads, outputs) is what makes read-after-write idempotent on
// GateIds and hence on design_hash.

#include <cstdint>
#include <unordered_set>

#include "aiger/aiger.hpp"
#include "netlist/builder.hpp"

namespace rfn::aiger {

namespace {

/// Per-count ceiling: rejects absurd headers before any allocation.
constexpr uint64_t kMaxCount = uint64_t{1} << 28;

bool parse_u64(std::string_view tok, uint64_t* out) {
  if (tok.empty() || tok.size() > 19) return false;
  uint64_t v = 0;
  for (const char c : tok) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

std::vector<std::string_view> split(std::string_view line) {
  std::vector<std::string_view> toks;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    size_t j = i;
    while (j < line.size() && line[j] != ' ' && line[j] != '\t') ++j;
    if (j > i) toks.push_back(line.substr(i, j - i));
    i = j;
  }
  return toks;
}

class Reader {
 public:
  Reader(std::string_view s, AigerDesign* out, std::string* error)
      : s_(s), out_(out), error_(error) {}

  bool run();

 private:
  // --- diagnostics ---

  bool fail(const std::string& msg) {
    if (error_) *error_ = "line " + std::to_string(line_) + ": " + msg;
    return false;
  }
  bool fail_at(const std::string& where, const std::string& msg) {
    if (error_) *error_ = where + ": " + msg;
    return false;
  }

  // --- input cursor ---

  /// Reads the next '\n'-terminated line (strips a trailing '\r'); false at
  /// end of input.
  bool next_line(std::string_view* out) {
    if (pos_ >= s_.size()) return false;
    size_t end = s_.find('\n', pos_);
    if (end == std::string_view::npos) end = s_.size();
    std::string_view line = s_.substr(pos_, end - pos_);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    pos_ = end < s_.size() ? end + 1 : s_.size();
    ++line_;
    *out = line;
    return true;
  }

  bool need_line(std::string_view* out, const char* section) {
    if (next_line(out)) return true;
    return fail(std::string("truncated file: missing ") + section + " line");
  }

  /// One section line holding exactly `n` literals (each range-checked).
  bool literal_line(const char* section, size_t n, uint64_t* lits) {
    std::string_view line;
    if (!need_line(&line, section)) return false;
    const std::vector<std::string_view> toks = split(line);
    if (toks.size() != n)
      return fail(std::string(section) + " line needs " + std::to_string(n) +
                  " literal(s)");
    for (size_t i = 0; i < n; ++i) {
      if (!parse_u64(toks[i], &lits[i]))
        return fail(std::string(section) + " line: '" + std::string(toks[i]) +
                    "' is not a number");
      if (lits[i] > 2 * m_ + 1)
        return fail(std::string(section) + " literal " +
                    std::to_string(lits[i]) + " out of range (max " +
                    std::to_string(2 * m_ + 1) + ")");
    }
    return true;
  }

  // --- variable table ---

  enum class Kind : uint8_t { Undefined, Input, Latch, And };

  bool define(uint64_t lit, Kind kind, const char* what) {
    if (lit & 1)
      return fail(std::string(what) + " literal " + std::to_string(lit) +
                  " must be even");
    if (lit < 2)
      return fail(std::string(what) + " literal " + std::to_string(lit) +
                  " redefines constant");
    const uint64_t var = lit >> 1;
    if (kind_[var] != Kind::Undefined)
      return fail(std::string(what) + " literal " + std::to_string(lit) +
                  " redefines variable " + std::to_string(var));
    kind_[var] = kind;
    return true;
  }

  /// Materializes a literal as a signal. Requires the variable defined and
  /// (for and gates) already built; creates Not gates / constants on demand.
  GateId lit2sig(uint64_t lit) {
    if (lit == 0) return bld_.constant(false);
    if (lit == 1) return bld_.constant(true);
    const GateId g = var2gate_[lit >> 1];
    return (lit & 1) ? bld_.not_(g) : g;
  }

  bool check_defined(uint64_t lit, const std::string& where) {
    const uint64_t var = lit >> 1;
    if (lit <= 1) return true;
    if (kind_[var] == Kind::Undefined)
      return fail_at(where, "references undeclared literal " +
                                std::to_string(lit) + " (variable " +
                                std::to_string(var) + " is never defined)");
    return true;
  }

  bool parse_header();
  bool parse_inputs();
  bool parse_latches();
  bool parse_literal_sections();
  bool parse_ascii_ands();
  bool build_binary_ands();
  bool parse_symbols();
  bool resolve_ascii_ands();
  bool elaborate();

  // --- state ---

  std::string_view s_;
  AigerDesign* out_;
  std::string* error_;
  size_t pos_ = 0;
  size_t line_ = 0;

  bool binary_ = false;
  uint64_t m_ = 0, i_ = 0, l_ = 0, o_ = 0, a_ = 0;
  uint64_t num_b_ = 0, num_c_ = 0;  // B and C header counts

  NetBuilder bld_;
  std::vector<Kind> kind_;        // indexed by variable
  std::vector<GateId> var2gate_;  // indexed by variable
  std::vector<GateId> latches_;
  std::vector<uint64_t> latch_next_;
  std::vector<uint64_t> out_lits_, bad_lits_, con_lits_;

  struct AndDef {
    uint64_t lhs, rhs0, rhs1;
    uint8_t state = 0;  // 0 new, 1 on stack, 2 built
  };
  std::vector<AndDef> and_defs_;          // ASCII only
  std::vector<size_t> def_of_;            // variable -> and_defs_ index

  std::vector<std::string> sym_i_, sym_l_, sym_o_, sym_b_;
};

bool Reader::parse_header() {
  std::string_view line;
  if (!next_line(&line)) return fail("empty file");
  const std::vector<std::string_view> toks = split(line);
  if (toks.empty()) return fail("missing header");
  if (toks[0] == "aig") {
    binary_ = true;
  } else if (toks[0] == "aag") {
    binary_ = false;
  } else {
    return fail("not an AIGER file (header must start with 'aag' or 'aig')");
  }
  if (toks.size() < 6 || toks.size() > 10)
    return fail("header needs 5 to 9 counts (M I L O A [B C J F])");
  uint64_t counts[9] = {0, 0, 0, 0, 0, 0, 0, 0, 0};
  for (size_t i = 1; i < toks.size(); ++i) {
    if (!parse_u64(toks[i], &counts[i - 1]))
      return fail("header count '" + std::string(toks[i]) +
                  "' is not a number");
    if (counts[i - 1] > kMaxCount) return fail("header count too large");
  }
  m_ = counts[0];
  i_ = counts[1];
  l_ = counts[2];
  o_ = counts[3];
  a_ = counts[4];
  num_b_ = counts[5];
  num_c_ = counts[6];
  if (counts[7] || counts[8])
    return fail("justice/fairness properties are unsupported");
  if (m_ != i_ + l_ + a_)
    return fail("header M = " + std::to_string(m_) + " but I + L + A = " +
                std::to_string(i_ + l_ + a_));
  kind_.assign(m_ + 1, Kind::Undefined);
  var2gate_.assign(m_ + 1, kNullGate);
  def_of_.assign(m_ + 1, SIZE_MAX);
  return true;
}

bool Reader::parse_inputs() {
  for (uint64_t k = 0; k < i_; ++k) {
    uint64_t lit;
    if (binary_) {
      lit = 2 * (k + 1);  // implicit in the binary encoding
    } else {
      if (!literal_line("input", 1, &lit)) return false;
    }
    if (!define(lit, Kind::Input, "input")) return false;
    var2gate_[lit >> 1] = bld_.input("");
  }
  return true;
}

bool Reader::parse_latches() {
  latches_.reserve(l_);
  latch_next_.reserve(l_);
  for (uint64_t k = 0; k < l_; ++k) {
    std::string_view line;
    if (!need_line(&line, "latch")) return false;
    const std::vector<std::string_view> toks = split(line);
    const size_t base = binary_ ? 0 : 1;  // binary omits the latch literal
    if (toks.size() < base + 1 || toks.size() > base + 2)
      return fail("latch line needs " + std::to_string(base + 1) + " or " +
                  std::to_string(base + 2) + " numbers");
    uint64_t nums[3] = {0, 0, 0};
    for (size_t i = 0; i < toks.size(); ++i) {
      if (!parse_u64(toks[i], &nums[i]))
        return fail("latch line: '" + std::string(toks[i]) +
                    "' is not a number");
    }
    const uint64_t lit = binary_ ? 2 * (i_ + k + 1) : nums[0];
    const uint64_t next = nums[base];
    if (!define(lit, Kind::Latch, "latch")) return false;
    if (next > 2 * m_ + 1)
      return fail("latch next-state literal " + std::to_string(next) +
                  " out of range");
    Tri init = Tri::F;
    if (toks.size() == base + 2) {
      const uint64_t reset = nums[base + 1];
      if (reset == 0) {
        init = Tri::F;
      } else if (reset == 1) {
        init = Tri::T;
      } else if (reset == lit) {
        init = Tri::X;  // uninitialized power-up
      } else {
        return fail("latch reset " + std::to_string(reset) +
                    " must be 0, 1, or the latch's own literal " +
                    std::to_string(lit));
      }
    }
    const GateId reg = bld_.reg("", init);
    var2gate_[lit >> 1] = reg;
    latches_.push_back(reg);
    latch_next_.push_back(next);
  }
  return true;
}

bool Reader::parse_literal_sections() {
  uint64_t lit;
  for (uint64_t k = 0; k < o_; ++k) {
    if (!literal_line("output", 1, &lit)) return false;
    out_lits_.push_back(lit);
  }
  for (uint64_t k = 0; k < num_b_; ++k) {
    if (!literal_line("bad", 1, &lit)) return false;
    bad_lits_.push_back(lit);
  }
  for (uint64_t k = 0; k < num_c_; ++k) {
    if (!literal_line("constraint", 1, &lit)) return false;
    con_lits_.push_back(lit);
  }
  return true;
}

bool Reader::parse_ascii_ands() {
  and_defs_.reserve(a_);
  for (uint64_t k = 0; k < a_; ++k) {
    uint64_t lits[3];
    if (!literal_line("and", 3, lits)) return false;
    if (!define(lits[0], Kind::And, "and")) return false;
    and_defs_.push_back({lits[0], lits[1], lits[2]});
    def_of_[lits[0] >> 1] = and_defs_.size() - 1;
  }
  return true;
}

bool Reader::resolve_ascii_ands() {
  // And gates may be listed in any order in ASCII mode: build each one with
  // an explicit DFS stack (fanins first, rhs0 before rhs1) and flag
  // combinational cycles. For topologically sorted files — including
  // everything write_aiger emits — this degenerates to file order, which is
  // the creation-order contract the round-trip relies on.
  std::vector<size_t> stack;
  for (size_t root = 0; root < and_defs_.size(); ++root) {
    if (and_defs_[root].state == 2) continue;
    stack.assign(1, root);
    while (!stack.empty()) {
      AndDef& d = and_defs_[stack.back()];
      if (d.state == 2) {
        stack.pop_back();
        continue;
      }
      d.state = 1;
      bool ready = true;
      for (const uint64_t rhs : {d.rhs0, d.rhs1}) {
        if (!check_defined(rhs, "and gate " + std::to_string(d.lhs)))
          return false;
        const uint64_t var = rhs >> 1;
        if (rhs > 1 && kind_[var] == Kind::And &&
            var2gate_[var] == kNullGate) {
          AndDef& dep = and_defs_[def_of_[var]];
          if (dep.state == 1)
            return fail_at("and gate " + std::to_string(d.lhs),
                           "combinational cycle through literal " +
                               std::to_string(rhs));
          stack.push_back(def_of_[var]);
          ready = false;
        }
      }
      if (!ready) continue;
      var2gate_[d.lhs >> 1] = bld_.and_(lit2sig(d.rhs0), lit2sig(d.rhs1));
      d.state = 2;
      stack.pop_back();
    }
  }
  return true;
}

bool Reader::build_binary_ands() {
  // Binary and gates are delta-coded: for the k-th gate the left-hand side
  // is implicitly 2*(I+L+k+1) and the stream holds LEB128 varints
  // delta0 = lhs - rhs0 and delta1 = rhs0 - rhs1, which forces the
  // topological order rhs1 <= rhs0 < lhs.
  auto decode = [&](uint64_t* out) {
    uint64_t x = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= s_.size()) return false;
      const uint8_t ch = static_cast<uint8_t>(s_[pos_++]);
      x |= static_cast<uint64_t>(ch & 0x7F) << shift;
      if (!(ch & 0x80)) break;
      shift += 7;
      if (shift > 63) return false;  // overlong encoding
    }
    *out = x;
    return true;
  };
  for (uint64_t k = 0; k < a_; ++k) {
    const uint64_t lhs = 2 * (i_ + l_ + k + 1);
    const std::string where = "and gate " + std::to_string(lhs);
    uint64_t delta0, delta1;
    if (!decode(&delta0) || !decode(&delta1))
      return fail_at(where, "truncated delta code in binary and section");
    if (delta0 == 0 || delta0 > lhs)
      return fail_at(where, "delta " + std::to_string(delta0) +
                                " puts rhs0 outside [0, lhs)");
    const uint64_t rhs0 = lhs - delta0;
    if (delta1 > rhs0)
      return fail_at(where, "delta " + std::to_string(delta1) +
                                " puts rhs1 below 0");
    const uint64_t rhs1 = rhs0 - delta1;
    // rhs0 < lhs and the ascending implicit lhs order guarantee both
    // operands are already defined; the kind table is filled for strictness.
    kind_[lhs >> 1] = Kind::And;
    var2gate_[lhs >> 1] = bld_.and_(lit2sig(rhs0), lit2sig(rhs1));
  }
  return true;
}

bool Reader::parse_symbols() {
  sym_i_.assign(i_, "");
  sym_l_.assign(l_, "");
  sym_o_.assign(o_, "");
  sym_b_.assign(num_b_, "");
  std::vector<std::vector<bool>> seen{
      std::vector<bool>(i_, false), std::vector<bool>(l_, false),
      std::vector<bool>(o_, false), std::vector<bool>(num_b_, false),
      std::vector<bool>(num_c_, false)};
  std::string_view line;
  while (next_line(&line)) {
    if (line == "c") return true;  // comment section: rest of file ignored
    if (line.empty()) return fail("empty line in symbol table");
    const char k = line[0];
    const size_t cls = k == 'i'   ? 0
                       : k == 'l' ? 1
                       : k == 'o' ? 2
                       : k == 'b' ? 3
                       : k == 'c' ? 4
                                  : SIZE_MAX;
    const size_t space = line.find(' ');
    uint64_t pos = 0;
    if (cls == SIZE_MAX || space == std::string_view::npos ||
        !parse_u64(line.substr(1, space - 1), &pos))
      return fail("malformed symbol table line '" + std::string(line) + "'");
    const std::string name(line.substr(space + 1));
    if (name.empty()) return fail("symbol with empty name");
    const uint64_t limit[] = {i_, l_, o_, num_b_, num_c_};
    if (pos >= limit[cls])
      return fail("symbol '" + std::string(line) + "' position out of range");
    if (seen[cls][pos])
      return fail("duplicate symbol '" + std::string(line.substr(0, space)) +
                  "'");
    seen[cls][pos] = true;
    switch (cls) {
      case 0: sym_i_[pos] = name; break;
      case 1: sym_l_[pos] = name; break;
      case 2: sym_o_[pos] = name; break;
      case 3: sym_b_[pos] = name; break;
      default: break;  // constraint symbols are informational only
    }
  }
  return true;
}

bool Reader::elaborate() {
  // Names first (ids are already fixed); reject in-kind duplicates — an
  // ambiguous gate name would make --bad lookups and witness files lie.
  std::unordered_set<std::string> gate_names;
  for (uint64_t k = 0; k < i_; ++k) {
    if (sym_i_[k].empty()) continue;
    if (!gate_names.insert(sym_i_[k]).second)
      return fail_at("symbol table", "duplicate name '" + sym_i_[k] + "'");
    bld_.name(var2gate_[k + 1], sym_i_[k]);
  }
  for (uint64_t k = 0; k < l_; ++k) {
    if (sym_l_[k].empty()) continue;
    if (!gate_names.insert(sym_l_[k]).second)
      return fail_at("symbol table", "duplicate name '" + sym_l_[k] + "'");
    bld_.name(latches_[k], sym_l_[k]);
  }

  // Binary and gates were already built while decoding the byte stream
  // (they precede the symbol table); ASCII ones are resolved here.
  if (!binary_ && !resolve_ascii_ands()) return false;

  for (uint64_t k = 0; k < l_; ++k) {
    const std::string where = "latch " + std::to_string(k);
    if (!check_defined(latch_next_[k], where)) return false;
    bld_.set_next(latches_[k], lit2sig(latch_next_[k]));
  }

  // Invariant constraints fold into every property: ok_reg remembers
  // "constraints held at all earlier steps", and a bad only counts when it
  // rises with the constraints still intact this step.
  GateId guard = kNullGate;
  if (num_c_ > 0) {
    std::vector<GateId> cons;
    for (uint64_t k = 0; k < num_c_; ++k) {
      if (!check_defined(con_lits_[k], "constraint " + std::to_string(k)))
        return false;
      cons.push_back(lit2sig(con_lits_[k]));
    }
    const GateId all = bld_.and_n(cons);
    const GateId ok = bld_.reg("_aiger_constraints_ok", Tri::T);
    bld_.set_next(ok, bld_.and_(ok, all));
    guard = bld_.and_(ok, all);
    out_->constraints_folded = true;
  }

  // Property registration. B entries are always properties; with B = 0 the
  // pre-1.9 HWMCC convention applies and outputs double as properties.
  std::unordered_set<std::string> prop_names;
  auto add_property = [&](const std::string& name, GateId sig,
                          bool is_property) {
    if (!prop_names.insert(name).second)
      return fail_at("symbol table",
                     "duplicate output/bad name '" + name + "'");
    bld_.output(name, sig);
    if (is_property) out_->properties.push_back({name, sig});
    return true;
  };
  for (uint64_t k = 0; k < num_b_; ++k) {
    if (!check_defined(bad_lits_[k], "bad " + std::to_string(k)))
      return false;
    GateId sig = lit2sig(bad_lits_[k]);
    if (guard != kNullGate) sig = bld_.and_(sig, guard);
    const std::string name =
        sym_b_[k].empty() ? "b" + std::to_string(k) : sym_b_[k];
    if (!add_property(name, sig, true)) return false;
  }
  const bool outputs_are_properties = num_b_ == 0;
  for (uint64_t k = 0; k < o_; ++k) {
    if (!check_defined(out_lits_[k], "output " + std::to_string(k)))
      return false;
    GateId sig = lit2sig(out_lits_[k]);
    if (outputs_are_properties && guard != kNullGate)
      sig = bld_.and_(sig, guard);
    const std::string name =
        sym_o_[k].empty() ? "o" + std::to_string(k) : sym_o_[k];
    if (!add_property(name, sig, outputs_are_properties)) return false;
  }
  return true;
}

bool Reader::run() {
  if (!parse_header()) return false;
  if (!parse_inputs()) return false;
  if (!parse_latches()) return false;
  if (!parse_literal_sections()) return false;
  if (!binary_ && !parse_ascii_ands()) return false;
  if (binary_) {
    // The binary and section is raw bytes between the last ASCII section
    // and the symbol table; gates are built while decoding.
    if (!build_binary_ands()) return false;
  }
  if (!parse_symbols()) return false;
  if (!elaborate()) return false;
  out_->netlist = bld_.take();
  out_->num_inputs = i_;
  out_->num_latches = l_;
  out_->num_ands = a_;
  out_->num_outputs = o_;
  out_->num_bad = num_b_;
  out_->num_constraints = num_c_;
  out_->binary = binary_;
  return true;
}

}  // namespace

bool read_aiger(std::string_view bytes, AigerDesign* out, std::string* error) {
  *out = AigerDesign{};
  Reader r(bytes, out, error);
  return r.run();
}

}  // namespace rfn::aiger
