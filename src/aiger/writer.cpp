// AIGER serialization and witness export.
//
// write_aiger assigns literals in a single ascending-GateId sweep — sound
// because Netlist construction only ever adds gates whose combinational
// fanins already exist (registers are patched later but are sources here).
// Gate types outside the and-inverter basis are decomposed on the fly:
//   Or(a,b)   = ~(~a & ~b)           Nand/Nor  = complement of And/Or
//   Xor(a,b)  = ~(~(a & ~b) & ~(~a & b))
//   Mux(s,a,b)= ~(~(s & b) & ~(~s & a))        (b = sel-true branch)
// with n-ary And/Or left-folded into 2-input chains. mk_and constant-folds
// (0, 1, a&a, a&~a) so no and line ever references a constant or repeats an
// operand — one of the invariants the reader's normalization relies on for
// read-after-write idempotence. And gates are emitted in the order they are
// created, which for an already-normalized netlist is exactly its GateId
// order; reading the output back therefore replays the same creation
// sequence and reproduces the same design_hash.

#include <cstdint>
#include <map>
#include <set>
#include <utility>

#include "aiger/aiger.hpp"
#include "util/log.hpp"

namespace rfn::aiger {

namespace {

void push_varint(std::string* out, uint64_t x) {
  while (x >= 0x80) {
    out->push_back(static_cast<char>(0x80 | (x & 0x7F)));
    x >>= 7;
  }
  out->push_back(static_cast<char>(x));
}

}  // namespace

std::string write_aiger(const Netlist& n, bool binary) {
  const uint64_t I = n.num_inputs();
  const uint64_t L = n.num_regs();
  constexpr uint64_t kUnassigned = ~uint64_t{0};
  std::vector<uint64_t> lit(n.size(), kUnassigned);
  for (uint64_t k = 0; k < I; ++k) lit[n.inputs()[k]] = 2 * (k + 1);
  for (uint64_t k = 0; k < L; ++k) lit[n.regs()[k]] = 2 * (I + 1 + k);

  std::vector<std::pair<uint64_t, uint64_t>> ands;  // (rhs0, rhs1), rhs0>=rhs1
  // Structural hashing mirrors the reader's NetBuilder: decompositions of
  // distinct gates may produce the same operand pair, and emitting it twice
  // would let the reader merge lines (changing gate creation order between
  // a file and its re-serialization, which breaks hash idempotence).
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> strash;
  auto mk_and = [&](uint64_t a, uint64_t b) -> uint64_t {
    if (a == 0 || b == 0) return 0;
    if (a == 1) return b;
    if (b == 1) return a;
    if (a == b) return a;
    if ((a ^ b) == 1) return 0;
    if (a < b) std::swap(a, b);
    const auto [it, fresh] = strash.try_emplace({a, b}, 0);
    if (!fresh) return it->second;
    ands.emplace_back(a, b);
    it->second = 2 * (I + L + ands.size());
    return it->second;
  };

  for (GateId g = 0; g < n.size(); ++g) {
    if (lit[g] != kUnassigned) continue;  // inputs and registers
    const Gate& gate = n.gate(g);
    auto f = [&](size_t i) { return lit[gate.fanins[i]]; };
    switch (gate.type) {
      case GateType::Const0:
        lit[g] = 0;
        break;
      case GateType::Const1:
        lit[g] = 1;
        break;
      case GateType::Buf:
        lit[g] = f(0);
        break;
      case GateType::Not:
        lit[g] = f(0) ^ 1;
        break;
      case GateType::And:
      case GateType::Nand: {
        uint64_t acc = f(0);
        for (size_t i = 1; i < gate.fanins.size(); ++i) acc = mk_and(acc, f(i));
        lit[g] = gate.type == GateType::Nand ? acc ^ 1 : acc;
        break;
      }
      case GateType::Or:
      case GateType::Nor: {
        uint64_t acc = f(0) ^ 1;
        for (size_t i = 1; i < gate.fanins.size(); ++i)
          acc = mk_and(acc, f(i) ^ 1);
        lit[g] = gate.type == GateType::Nor ? acc : acc ^ 1;
        break;
      }
      case GateType::Xor:
      case GateType::Xnor: {
        const uint64_t a = f(0), b = f(1);
        const uint64_t x =
            mk_and(mk_and(a, b ^ 1) ^ 1, mk_and(a ^ 1, b) ^ 1) ^ 1;
        lit[g] = gate.type == GateType::Xnor ? x ^ 1 : x;
        break;
      }
      case GateType::Mux: {
        const uint64_t s = f(0), d0 = f(1), d1 = f(2);
        lit[g] = mk_and(mk_and(s, d1) ^ 1, mk_and(s ^ 1, d0) ^ 1) ^ 1;
        break;
      }
      case GateType::Input:
      case GateType::Reg:
        RFN_CHECK(false, "gate %u of type %s has no literal", g,
                  gate_type_name(gate.type));
        break;
    }
  }

  const uint64_t A = ands.size();
  const uint64_t M = I + L + A;
  const uint64_t B = n.outputs().size();

  std::string out = binary ? "aig " : "aag ";
  auto push_num = [&out](uint64_t x) { out += std::to_string(x); };
  push_num(M);
  out += ' ';
  push_num(I);
  out += ' ';
  push_num(L);
  out += " 0 ";  // O = 0: every output ships as a bad-state property
  push_num(A);
  if (B > 0) {
    out += ' ';
    push_num(B);
  }
  out += '\n';

  if (!binary) {
    for (uint64_t k = 0; k < I; ++k) {
      push_num(2 * (k + 1));
      out += '\n';
    }
  }
  for (uint64_t k = 0; k < L; ++k) {
    const GateId r = n.regs()[k];
    const uint64_t self = 2 * (I + 1 + k);
    if (!binary) {
      push_num(self);
      out += ' ';
    }
    push_num(lit[n.reg_data(r)]);
    const Tri init = n.reg_init(r);
    if (init == Tri::T) {
      out += " 1";
    } else if (init == Tri::X) {
      out += ' ';
      push_num(self);  // own literal: uninitialized power-up
    }
    out += '\n';
  }
  for (const auto& [name, g] : n.outputs()) {
    push_num(lit[g]);
    out += '\n';
  }
  if (binary) {
    for (uint64_t j = 0; j < A; ++j) {
      const uint64_t lhs = 2 * (I + L + j + 1);
      push_varint(&out, lhs - ands[j].first);
      push_varint(&out, ands[j].first - ands[j].second);
    }
  } else {
    for (uint64_t j = 0; j < A; ++j) {
      push_num(2 * (I + L + j + 1));
      out += ' ';
      push_num(ands[j].first);
      out += ' ';
      push_num(ands[j].second);
      out += '\n';
    }
  }

  // The reader rejects duplicate names within a symbol class, but a Netlist
  // can carry them (e.g. the same output registered twice). Skip repeated
  // gate names and suffix repeated property names so the output always
  // reads back.
  std::set<std::string> gate_names, prop_names;
  for (uint64_t k = 0; k < I; ++k) {
    const GateId g = n.inputs()[k];
    if (!n.has_name(g) || !gate_names.insert(n.name(g)).second) continue;
    out += 'i';
    push_num(k);
    out += ' ';
    out += n.name(g);
    out += '\n';
  }
  for (uint64_t k = 0; k < L; ++k) {
    const GateId r = n.regs()[k];
    if (!n.has_name(r) || !gate_names.insert(n.name(r)).second) continue;
    out += 'l';
    push_num(k);
    out += ' ';
    out += n.name(r);
    out += '\n';
  }
  for (uint64_t k = 0; k < B; ++k) {
    std::string name = n.outputs()[k].first;
    while (!prop_names.insert(name).second) name += "_b" + std::to_string(k);
    out += 'b';
    push_num(k);
    out += ' ';
    out += name;
    out += '\n';
  }
  return out;
}

std::string write_witness_fails(const Netlist& n, size_t property_index,
                                const Trace& trace) {
  std::string out = "1\nb" + std::to_string(property_index) + "\n";
  // Initial latch state: registers the trace leaves open fall back to their
  // reset value ('x' when the reset itself is unconstrained).
  const Cube empty;
  const Cube& s0 = trace.steps.empty() ? empty : trace.steps[0].state;
  for (const GateId r : n.regs()) {
    Tri v = cube_lookup(s0, r);
    if (v == Tri::X) v = n.reg_init(r);
    out += tri_char(v);
  }
  out += '\n';
  for (const TraceStep& step : trace.steps) {
    for (const GateId i : n.inputs()) out += tri_char(cube_lookup(step.inputs, i));
    out += '\n';
  }
  out += ".\n";
  return out;
}

std::string write_witness_holds(size_t property_index) {
  return "0\nb" + std::to_string(property_index) + "\n.\n";
}

}  // namespace rfn::aiger
