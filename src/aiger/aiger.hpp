#pragma once
// AIGER 1.9 reader/writer and witness export.
//
// The bridge to the hardware model-checking ecosystem: HWMCC-class
// benchmarks ship as AIGER and-inverter graphs, and third-party tools
// (aigsim, certifaiger-style checkers) consume AIGER witnesses. This module
// covers the model-checking subset of the 1.9 format:
//
//   * both encodings — ASCII ("aag") and binary ("aig", delta-coded ands);
//   * latches with 1.9 reset values: 0, 1, or the latch's own literal
//     (uninitialized power-up, elaborated as Tri::X so the 3-valued engines
//     see the initial-state cube);
//   * multiple bad-state properties (B) and invariant constraints (C).
//     Constraints are folded into every property during elaboration with
//     the standard monitor construction: a fresh register tracks
//     "constraints held at every earlier step" and each bad is gated by
//     monitor AND current-step constraints, so every downstream engine
//     keeps plain unreachability semantics;
//   * symbol tables and comments. Justice/fairness sections (J/F) are
//     rejected with a clean diagnostic — liveness is out of scope.
//
// Compatibility rule: a file with B = 0 but O > 0 (the pre-1.9 HWMCC
// convention) treats every output as a bad-state property.
//
// Elaboration targets the shared gate-level Netlist through NetBuilder, so
// reading is normalizing: and-inverter pairs become And/Not gates with
// structural hashing, constant folding, and double-negation elimination
// applied. write_aiger is exact on that normalized form — for any netlist n,
// read(write(read(write(n)))) is structurally identical (same GateIds, same
// netlist/analysis.hpp design_hash) to read(write(n)), which is what lets
// certificates and the corpus baseline key on the design hash of the
// AIGER-loaded netlist. netlist_fuzz_test enforces the idempotence.
//
// This header deliberately depends on nothing beyond the netlist layer:
// rfn_check links it to re-elaborate AIGER designs without ever linking the
// BDD package or the CEGAR loop it audits.

#include <string>
#include <string_view>
#include <vector>

#include "netlist/netlist.hpp"

namespace rfn::aiger {

/// One verification obligation of an AIGER file: bad-state property b<k>
/// (or output o<k> under the B=0 compatibility rule). `name` is the symbol
/// table entry when present, else "b<k>" / "o<k>"; the same name is
/// registered as a netlist output, so CLI --bad lookups and certificate
/// property names line up.
struct AigerProperty {
  std::string name;
  GateId signal = kNullGate;
};

/// An elaborated AIGER file: the netlist plus the property list and the
/// header shape (for diagnostics and corpus summaries).
struct AigerDesign {
  Netlist netlist;
  std::vector<AigerProperty> properties;
  // Header counts as declared in the file.
  size_t num_inputs = 0, num_latches = 0, num_ands = 0;
  size_t num_outputs = 0, num_bad = 0, num_constraints = 0;
  bool binary = false;
  /// True when C > 0 and the constraint monitor was woven into every
  /// property (see header comment).
  bool constraints_folded = false;
};

/// Parses an AIGER 1.9 document (either encoding, detected from the magic)
/// into `out`. Strict: malformed headers, out-of-range or undefined
/// literals, redefinitions, combinational cycles, truncated binary delta
/// codes, invalid reset literals, duplicate or out-of-range symbol entries,
/// and unsupported justice/fairness sections all return false with a
/// one-line diagnostic in `error` — never a crash or an abort.
bool read_aiger(std::string_view bytes, AigerDesign* out, std::string* error);

/// Serializes a netlist as AIGER, ASCII ("aag") or binary ("aig").
/// Gates are decomposed into and-inverter form (Or/Nand/Nor/Xor/Xnor/Mux
/// become AND chains under complemented literals); every design output is
/// exported as a bad-state property (B section) carrying its output name in
/// the symbol table, which inverts the reader's property registration.
/// Latch resets follow 1.9: omitted for 0, "1" for 1, the latch's own
/// literal for Tri::X. Gates unreachable from latches and outputs are not
/// emitted.
std::string write_aiger(const Netlist& n, bool binary);

/// AIGER witness for a violated property: status line "1", the property
/// ("b<index>"), the initial latch state (one character per latch in
/// netlist register order; 'x' = unconstrained), one input vector per trace
/// cycle (netlist input order, 'x' = unconstrained), and the terminating
/// ".". Registers absent from the trace's first state cube default to
/// their reset value.
std::string write_witness_fails(const Netlist& n, size_t property_index,
                                const Trace& trace);

/// AIGER witness claiming the property holds: "0", "b<index>", ".".
std::string write_witness_holds(size_t property_index);

}  // namespace rfn::aiger
