#pragma once
// Resource accounting and profiling: thread-CPU clocks, RSS sampling, and
// the rfn-prof-v1 artifact.
//
// Three independent meters feed this layer:
//   * CPU — thread_cpu_ns() reads CLOCK_THREAD_CPUTIME_ID so the portfolio
//     can attribute CPU seconds to each engine job no matter which executor
//     worker ran it. The deltas land in `engine.cpu.<name>` timers (flushed
//     once per race, like every portfolio metric).
//   * Heap — BddMgr and sat::Solver keep byte-exact tallies of their arena
//     capacities (node pool + unique table + computed cache; clause arena +
//     watch lists) and their owners flush them as `bdd.heap_bytes` /
//     `sat.heap_bytes` gauges. The counters live in those subsystems; this
//     header only defines where they are aggregated.
//   * RSS — read_rss_bytes() reads /proc/self/statm; the watchdog's monitor
//     thread samples it into the process-global RssLog each poll, which both
//     backs --budget-mem-mb enforcement and the artifact's RSS timeline.
//
// build_prof_json() bundles all three into one rfn-prof-v1 document
// (validated offline by tools/trace_report.py --prof), and folded_stacks()
// renders the span tracer's Chrome trace as collapsed stacks with self-time
// for flamegraph.pl.

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/metrics.hpp"

namespace rfn::prof {

/// CPU time consumed by the calling thread, in nanoseconds
/// (CLOCK_THREAD_CPUTIME_ID). Monotone per thread. Returns 0 on platforms
/// without per-thread CPU clocks, so deltas degrade to 0, never garbage.
int64_t thread_cpu_ns();

/// CPU time consumed by the whole process, in nanoseconds
/// (CLOCK_PROCESS_CPUTIME_ID). 0 when unavailable.
int64_t process_cpu_ns();

/// Current resident set size in bytes, from /proc/self/statm (resident
/// pages x page size). 0 when the file is unreadable (non-Linux).
int64_t read_rss_bytes();

struct RssSample {
  double t_ms = 0.0;   // since enable()
  int64_t bytes = 0;
};

/// Process-global bounded RSS timeline. The watchdog's monitor thread calls
/// sample() each poll; the CLI enables it for the lifetime of a profiled
/// run and serializes it into the rfn-prof-v1 artifact. Bounded: past
/// kMaxSamples the log thins itself (keeps every other sample and doubles
/// its accept stride), so an hours-long run still fits — the peak is exact
/// regardless of thinning.
class RssLog {
 public:
  static RssLog& global();

  /// Clears the log and starts a new timeline epoch at t = 0.
  void enable();
  void disable();
  bool enabled() const;

  /// Reads RSS now and appends it (subject to the accept stride). No-op
  /// when disabled. Returns the bytes read (0 when disabled/unreadable).
  int64_t sample();
  /// Appends an externally-read value — same stride and peak rules.
  void record(int64_t bytes);

  int64_t peak_bytes() const;
  std::vector<RssSample> samples() const;

  static constexpr size_t kMaxSamples = 4096;

 private:
  void record_locked(int64_t bytes);

  mutable std::mutex mu_;
  bool enabled_ = false;
  Stopwatch watch_;
  uint64_t calls_ = 0;
  uint64_t stride_ = 1;
  int64_t peak_ = 0;
  std::vector<RssSample> samples_;
};

/// Assembles the rfn-prof-v1 document from a run's baseline-relative
/// metrics. `baseline`/`now` bracket the run (MetricsEpoch discipline);
/// `wall_s` is the run's wall time, `cpu_s` the process-CPU delta over the
/// same interval, `workers` the portfolio worker count. Engine rows come
/// from the `engine.cpu.<name>` timers, subsystem peaks from the
/// `bdd.heap_bytes` / `sat.heap_bytes` gauges, and the RSS block from
/// RssLog::global().
json::Value build_prof_json(const MetricsSnapshot& baseline,
                            const MetricsSnapshot& now, double wall_s,
                            double cpu_s, size_t workers);

/// Renders a Chrome trace-event document (SpanTracer::to_chrome_json) as
/// collapsed stacks: one "thread;outer;inner <self-microseconds>" line per
/// distinct stack, sorted, ready for flamegraph.pl. Self time is the span's
/// duration minus its children's — the invariant prof_test pins is that the
/// per-thread line sums equal the per-thread root span durations.
std::string folded_stacks(const json::Value& chrome_doc);

}  // namespace rfn::prof
