#pragma once
// Structured observability for the CEGAR loop: a thread-safe registry of
// named counters, gauges and histogram timers.
//
// Every engine layer (BDD manager flushes, image/reach steps, ATPG
// backtracks, hybrid cut-cube classification, portfolio races, the RFN loop
// itself) records into one process-global registry. The design splits the
// cost into two tiers:
//   * the hot path — Counter::add / Gauge::record_max / Timer::record — is
//     a single relaxed atomic RMW, safe from any executor thread;
//   * registration — MetricsRegistry::counter("name") — takes a mutex, so
//     call sites either run at step boundaries (once per race / per ATPG
//     call) or cache the returned reference in a function-local static.
// Metric objects are never deallocated while the registry lives, and
// reset() zeroes values without invalidating references, so cached
// references stay valid across test cases and bench repetitions.
//
// Snapshots flatten the registry into name -> double for delta arithmetic
// (per-race win counts in benches, per-test assertions) and to_json()
// serializes the whole registry for `rfn --metrics`, the per-run summary
// object of the JSON event trace, and the bench regression gate.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "util/json.hpp"
#include "util/stopwatch.hpp"

namespace rfn {

/// Monotonically increasing event count. Lock-free.
class Counter {
 public:
  void add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Last-written level plus a high-water mark. Lock-free.
class Gauge {
 public:
  void set(int64_t v) {
    v_.store(v, std::memory_order_relaxed);
    record_max(v);
  }
  /// Raises the high-water mark without touching the level. This is the
  /// call engines use for peak trackers (BDD live nodes, abstraction size).
  void record_max(int64_t v) {
    int64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  int64_t max() const { return max_.load(std::memory_order_relaxed); }
  void reset() {
    v_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> v_{0};
  std::atomic<int64_t> max_{0};
};

/// Accumulated duration histogram: count, total and max, in nanoseconds
/// internally so accumulation is a single atomic add. Lock-free.
class Timer {
 public:
  void record(double seconds) {
    const auto ns = static_cast<uint64_t>(seconds < 0.0 ? 0.0 : seconds * 1e9);
    count_.fetch_add(1, std::memory_order_relaxed);
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
    uint64_t cur = max_ns_.load(std::memory_order_relaxed);
    while (ns > cur &&
           !max_ns_.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
    }
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double total_seconds() const {
    return static_cast<double>(total_ns_.load(std::memory_order_relaxed)) * 1e-9;
  }
  double max_seconds() const {
    return static_cast<double>(max_ns_.load(std::memory_order_relaxed)) * 1e-9;
  }
  void reset() {
    count_.store(0, std::memory_order_relaxed);
    total_ns_.store(0, std::memory_order_relaxed);
    max_ns_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> total_ns_{0};
  std::atomic<uint64_t> max_ns_{0};
};

/// Flat name -> value view of a registry at one instant. Counters appear
/// under their name; gauges add ".max"; timers add ".count", ".seconds" and
/// ".max_seconds".
struct MetricsSnapshot {
  std::map<std::string, double> values;

  double value(const std::string& name, double fallback = 0.0) const {
    const auto it = values.find(name);
    return it == values.end() ? fallback : it->second;
  }
  /// Pointwise this - before (names missing from `before` count as 0).
  /// Meaningful for counters and timer totals; gauge levels and maxima are
  /// not differences — read those off the raw snapshot.
  MetricsSnapshot delta(const MetricsSnapshot& before) const;
};

class MetricsRegistry {
 public:
  /// The registry engines record into: the registry bound to this thread
  /// (MetricsScope), or the process-wide one when nothing is bound. Every
  /// recording site already routes through global(), so binding a scope
  /// redirects a whole run — including executor workers and the watchdog
  /// monitor, which propagate their creator's binding — without touching
  /// any call site.
  static MetricsRegistry& global();
  /// The process-wide registry, ignoring any thread binding (server-level
  /// counters that must aggregate across requests).
  static MetricsRegistry& process();
  /// This thread's current binding (nullptr = process registry). Exposed so
  /// thread-launching utilities (Executor, Watchdog) can propagate it.
  static MetricsRegistry* current_binding();
  /// Rebinds this thread and returns the previous binding. Prefer
  /// MetricsScope; this is the primitive it and the thread-propagation
  /// paths use.
  static MetricsRegistry* bind(MetricsRegistry* reg);

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. The returned reference is stable for the registry's
  /// lifetime (entries are never erased, reset() only zeroes them).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Timer& timer(std::string_view name);

  MetricsSnapshot snapshot() const;

  /// Full registry as one JSON object: {"counters": {...}, "gauges":
  /// {name: {"value": v, "max": m}}, "timers": {name: {"count": c,
  /// "seconds": s, "max_seconds": m}}}. Keys are sorted (std::map), so the
  /// document is stable for golden tests and the bench gate.
  ///
  /// With a non-null `baseline` (a snapshot taken at a run's start, see
  /// MetricsEpoch) counters and timer count/seconds are reported relative
  /// to it, so two runs in one process each serialize only their own work.
  /// Gauge levels and maxima are not differences and stay raw.
  json::Value to_json(const MetricsSnapshot* baseline = nullptr) const;

  /// Monotonically increasing epoch id, bumped by each MetricsEpoch. Lets
  /// consumers detect that two summaries came from different runs.
  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }
  uint64_t begin_epoch() {
    return epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Zeroes every registered metric without invalidating references.
  /// For per-run isolation in tests and benches.
  void reset();

 private:
  mutable std::mutex mu_;
  std::atomic<uint64_t> epoch_{0};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Timer>, std::less<>> timers_;
};

/// RAII thread binding: while alive, MetricsRegistry::global() on this
/// thread (and on any Executor worker running tasks submitted from it, and
/// any Watchdog started under it) resolves to `reg`. Binding nullptr
/// restores the process registry for the scope. rfn_serve binds one fresh
/// registry per request so concurrent requests' batch summaries are
/// request-relative instead of process-cumulative.
class MetricsScope {
 public:
  explicit MetricsScope(MetricsRegistry* reg)
      : prev_(MetricsRegistry::bind(reg)) {}
  MetricsScope(const MetricsScope&) = delete;
  MetricsScope& operator=(const MetricsScope&) = delete;
  ~MetricsScope() { MetricsRegistry::bind(prev_); }

 private:
  MetricsRegistry* prev_;
};

/// Per-run isolation guard for a shared registry. Resetting the registry
/// between runs would break callers that hold snapshot/delta pairs across a
/// run (portfolio tests) or accumulate across bench repetitions, so an
/// epoch instead captures a baseline snapshot at run start; serializing the
/// run's summary through to_json(&epoch.baseline()) subtracts everything
/// recorded before this run began. Two run_rfn calls in one process thus
/// get disjoint summaries without either seeing a zeroed registry.
class MetricsEpoch {
 public:
  explicit MetricsEpoch(MetricsRegistry& reg = MetricsRegistry::global())
      : id_(reg.begin_epoch()), baseline_(reg.snapshot()) {}

  uint64_t id() const { return id_; }
  const MetricsSnapshot& baseline() const { return baseline_; }

 private:
  uint64_t id_;
  MetricsSnapshot baseline_;
};

/// RAII scoped timer: records the elapsed wall time into a Timer when it
/// leaves scope (or at an explicit stop()). Nesting is just independent
/// objects — each scope records its own duration.
class MetricTimer {
 public:
  explicit MetricTimer(Timer& timer) : timer_(&timer) {}
  /// Convenience: resolves `name` in the global registry.
  explicit MetricTimer(std::string_view name)
      : timer_(&MetricsRegistry::global().timer(name)) {}
  MetricTimer(const MetricTimer&) = delete;
  MetricTimer& operator=(const MetricTimer&) = delete;
  ~MetricTimer() { stop(); }

  /// Records now instead of at scope exit; idempotent. Returns the elapsed
  /// seconds that were recorded.
  double stop() {
    if (timer_ == nullptr) return 0.0;
    const double s = watch_.seconds();
    timer_->record(s);
    timer_ = nullptr;
    return s;
  }

 private:
  Timer* timer_;
  Stopwatch watch_;
};

}  // namespace rfn
