#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace rfn::json {

Value& Value::push(Value v) {
  if (kind_ == Kind::Null) kind_ = Kind::Array;
  items_.push_back(std::move(v));
  return *this;
}

Value& Value::set(std::string_view key, Value v) {
  if (kind_ == Kind::Null) kind_ = Kind::Object;
  for (Member& m : members_) {
    if (m.first == key) {
      m.second = std::move(v);
      return *this;
    }
  }
  members_.emplace_back(std::string(key), std::move(v));
  return *this;
}

const Value* Value::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const Member& m : members_)
    if (m.first == key) return &m.second;
  return nullptr;
}

const Value* Value::find_path(std::string_view dotted) const {
  const Value* v = this;
  while (!dotted.empty()) {
    const size_t dot = dotted.find('.');
    const std::string_view head = dotted.substr(0, dot);
    v = v->find(head);
    if (v == nullptr) return nullptr;
    if (dot == std::string_view::npos) break;
    dotted.remove_prefix(dot + 1);
  }
  return v;
}

bool operator==(const Value& a, const Value& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case Value::Kind::Null: return true;
    case Value::Kind::Bool: return a.bool_ == b.bool_;
    case Value::Kind::Number: return a.num_ == b.num_;
    case Value::Kind::String: return a.str_ == b.str_;
    case Value::Kind::Array: return a.items_ == b.items_;
    case Value::Kind::Object: return a.members_ == b.members_;
  }
  return false;
}

std::string escape(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

namespace {

std::string number_to_string(double d) {
  if (!std::isfinite(d)) return "null";  // JSON has no Inf/NaN
  // Integers (the common case: counters, counts) print exactly; everything
  // else round-trips through %.17g.
  if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", d);
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  return buf;
}

}  // namespace

void Value::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  auto newline = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<size_t>(indent) * d, ' ');
  };
  switch (kind_) {
    case Kind::Null: out += "null"; return;
    case Kind::Bool: out += bool_ ? "true" : "false"; return;
    case Kind::Number: out += number_to_string(num_); return;
    case Kind::String: out += escape(str_); return;
    case Kind::Array: {
      if (items_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        items_[i].dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      return;
    }
    case Kind::Object: {
      if (members_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        out += escape(members_[i].first);
        out += pretty ? ": " : ":";
        members_[i].second.dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      return;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// --- parser ---

namespace {

struct Parser {
  std::string_view text;
  size_t pos = 0;
  std::string error;

  bool fail(const std::string& msg) {
    if (error.empty())
      error = msg + " at offset " + std::to_string(pos);
    return false;
  }

  void skip_ws() {
    while (pos < text.size()) {
      const char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }

  bool consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return fail("bad literal");
    pos += word.size();
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected string");
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) break;
      const char esc = text[pos++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos + 4 > text.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported;
          // the observability schemas never emit them).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_value(Value& out) {
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') {
      ++pos;
      out = Value::object();
      skip_ws();
      if (consume('}')) return true;
      for (;;) {
        skip_ws();
        std::string key;
        if (!parse_string(key)) return false;
        skip_ws();
        if (!consume(':')) return fail("expected ':'");
        Value v;
        if (!parse_value(v)) return false;
        out.set(key, std::move(v));
        skip_ws();
        if (consume(',')) continue;
        if (consume('}')) return true;
        return fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos;
      out = Value::array();
      skip_ws();
      if (consume(']')) return true;
      for (;;) {
        Value v;
        if (!parse_value(v)) return false;
        out.push(std::move(v));
        skip_ws();
        if (consume(',')) continue;
        if (consume(']')) return true;
        return fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      std::string s;
      if (!parse_string(s)) return false;
      out = Value(std::move(s));
      return true;
    }
    if (c == 't') {
      if (!literal("true")) return false;
      out = Value(true);
      return true;
    }
    if (c == 'f') {
      if (!literal("false")) return false;
      out = Value(false);
      return true;
    }
    if (c == 'n') {
      if (!literal("null")) return false;
      out = Value();
      return true;
    }
    // Number.
    const size_t start = pos;
    if (consume('-')) {}
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) || text[pos] == '.' ||
            text[pos] == 'e' || text[pos] == 'E' || text[pos] == '+' ||
            text[pos] == '-'))
      ++pos;
    if (pos == start) return fail("unexpected character");
    const std::string num(text.substr(start, pos - start));
    char* end = nullptr;
    const double d = std::strtod(num.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("bad number");
    out = Value(d);
    return true;
  }
};

}  // namespace

Value parse(std::string_view text, std::string* error) {
  Parser p{text, 0, {}};
  Value v;
  if (!p.parse_value(v)) {
    if (error != nullptr) *error = p.error;
    return Value();
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    p.fail("trailing garbage");
    if (error != nullptr) *error = p.error;
    return Value();
  }
  if (error != nullptr) error->clear();
  return v;
}

}  // namespace rfn::json
