#include "util/stats.hpp"

#include <algorithm>
#include <cstdio>

#include "util/log.hpp"

namespace rfn {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  RFN_CHECK(cells.size() == headers_.size(), "row width %zu != header width %zu",
            cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<size_t> width(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out.append(width[c] - row[c].size(), ' ');
      if (c + 1 < row.size()) out += " | ";
    }
    out += '\n';
  };

  std::string out;
  emit_row(headers_, out);
  for (size_t c = 0; c < headers_.size(); ++c) {
    out.append(width[c], '-');
    if (c + 1 < headers_.size()) out += "-+-";
  }
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

std::string fmt_int(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  return buf;
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string format_portfolio_stats(const MetricsSnapshot& s) {
  auto count = [&s](const char* name) {
    return fmt_int(static_cast<int64_t>(s.value(name)));
  };
  Table summary({"races", "launched", "cancelled", "inconclusive", "wall (s)"});
  summary.add_row({count("portfolio.races"), count("portfolio.jobs_launched"),
                   count("portfolio.jobs_cancelled"),
                   count("portfolio.jobs_inconclusive"),
                   fmt_double(s.value("portfolio.race.seconds"), 3)});
  std::string out = summary.to_string();
  Table winners({"engine", "wins"});
  bool any = false;
  static constexpr std::string_view kPrefix = "portfolio.wins.";
  for (const auto& [name, value] : s.values) {
    if (name.rfind(kPrefix, 0) != 0 || value <= 0.0) continue;
    winners.add_row({name.substr(kPrefix.size()),
                     fmt_int(static_cast<int64_t>(value))});
    any = true;
  }
  if (any) out += winners.to_string();
  return out;
}

std::string format_engine_stats(const MetricsSnapshot& s) {
  auto count = [&s](const char* name) {
    return fmt_int(static_cast<int64_t>(s.value(name)));
  };
  // Thread-CPU seconds from the portfolio's per-job accounting
  // ("engine.cpu.<job>" timers); "-" for engines that never raced.
  auto cpu = [&s](std::initializer_list<const char*> jobs) -> std::string {
    double total = 0.0;
    bool any = false;
    for (const char* job : jobs) {
      const std::string key = std::string("engine.cpu.") + job + ".seconds";
      if (s.values.find(key) == s.values.end()) continue;
      total += s.value(key.c_str());
      any = true;
    }
    return any ? fmt_double(total, 3) : "-";
  };
  Table t({"engine", "calls", "effort", "wall (s)", "cpu (s)"});
  t.add_row({"bdd-reach", count("mc.reach.calls"),
             count("mc.reach.image_steps") + " image steps",
             fmt_double(s.value("mc.reach.seconds"), 3),
             cpu({"bdd-reach"})});
  t.add_row({"comb-atpg", count("atpg.comb.calls"),
             count("atpg.comb.backtracks") + " backtracks", "-", "-"});
  t.add_row({"seq-atpg", count("atpg.seq.calls"),
             count("atpg.seq.backtracks") + " backtracks", "-",
             cpu({"seq-atpg", "guided-atpg"})});
  t.add_row({"hybrid", count("hybrid.walks"),
             count("hybrid.atpg_calls") + " atpg calls", "-", "-"});
  t.add_row({"sat-bmc", count("sat.checks"),
             count("sat.conflicts") + " conflicts", "-", cpu({"sat-bmc"})});
  t.add_row({"pdr", count("pdr.runs"), count("pdr.clauses") + " clauses",
             fmt_double(s.value("pdr.run.seconds"), 3), cpu({"pdr"})});
  t.add_row({"rand-sim", "-", "-", "-", cpu({"rand-sim"})});
  return t.to_string();
}

}  // namespace rfn
