#include "util/options.hpp"

#include <cstdlib>

namespace rfn {

Options::Options(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positionals_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      put(arg.substr(0, eq), arg.substr(eq + 1));
    } else if (i + 1 < argc && argv[i + 1][0] != '-') {
      put(arg, argv[++i]);
    } else {
      put(arg, "1");
    }
  }
}

void Options::put(const std::string& key, std::string value) {
  values_[key] = value;
  ordered_.emplace_back(key, std::move(value));
}

std::vector<std::string> Options::get_all(const std::string& key) const {
  std::vector<std::string> out;
  for (const auto& [k, v] : ordered_)
    if (k == key) out.push_back(v);
  return out;
}

bool Options::has(const std::string& key) const { return values_.count(key) > 0; }

std::string Options::get(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

int64_t Options::get_int(const std::string& key, int64_t fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 0);
}

double Options::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second != "0" && it->second != "false" && it->second != "no";
}

}  // namespace rfn
