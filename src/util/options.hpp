#pragma once
// Minimal command-line option parsing for examples and bench binaries.
//
// Supports --key=value, --key value, and boolean --flag forms. Unrecognized
// arguments are collected as positionals so google-benchmark flags pass
// through untouched.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rfn {

class Options {
 public:
  Options() = default;
  Options(int argc, char** argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  int64_t get_int(const std::string& key, int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Every value given for `key`, in command-line order. A repeated option
  /// (`--bad a --bad b`) accumulates here; get() returns the last value.
  std::vector<std::string> get_all(const std::string& key) const;

  const std::vector<std::string>& positionals() const { return positionals_; }

 private:
  void put(const std::string& key, std::string value);

  std::map<std::string, std::string> values_;
  std::vector<std::pair<std::string, std::string>> ordered_;
  std::vector<std::string> positionals_;
};

}  // namespace rfn
