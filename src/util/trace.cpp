#include "util/trace.hpp"

#include <algorithm>
#include <chrono>

namespace rfn {
namespace {

int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double to_us(uint64_t ns) { return static_cast<double>(ns) * 1e-3; }

}  // namespace

SpanTracer& SpanTracer::global() {
  // Leaked singleton, same lifetime rule as MetricsRegistry::global():
  // executor threads may record during static destruction of other objects.
  static SpanTracer* tracer = new SpanTracer();
  return *tracer;
}

void SpanTracer::enable(size_t events_per_thread) {
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.clear();
  next_tid_ = 1;
  capacity_ = events_per_thread == 0 ? 1 : events_per_thread;
  epoch_ns_.store(steady_now_ns(), std::memory_order_relaxed);
  // The generation bump invalidates every thread's cached buffer pointer;
  // stale threads re-register on their next emission.
  generation_.fetch_add(1, std::memory_order_release);
  enabled_.store(true, std::memory_order_release);
}

const char* SpanTracer::intern(std::string_view s) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& owned : interned_)
    if (*owned == s) return owned->c_str();
  interned_.push_back(std::make_unique<std::string>(s));
  return interned_.back()->c_str();
}

uint64_t SpanTracer::now_ns() const {
  const int64_t delta =
      steady_now_ns() - epoch_ns_.load(std::memory_order_relaxed);
  return delta < 0 ? 0 : static_cast<uint64_t>(delta);
}

SpanTracer::ThreadBuffer* SpanTracer::buffer() {
  struct Cache {
    SpanTracer* owner = nullptr;
    uint64_t gen = 0;
    ThreadBuffer* buf = nullptr;
  };
  thread_local Cache cache;
  const uint64_t gen = generation_.load(std::memory_order_acquire);
  if (cache.owner == this && cache.gen == gen) return cache.buf;
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.push_back(std::make_unique<ThreadBuffer>());
  ThreadBuffer* buf = buffers_.back().get();
  buf->tid = next_tid_++;
  buf->ring.resize(capacity_);
  cache = {this, gen, buf};
  return buf;
}

void SpanTracer::emit(const SpanEvent& e) {
  ThreadBuffer* buf = buffer();
  buf->ring[buf->count % buf->ring.size()] = e;
  ++buf->count;
}

void SpanTracer::set_thread_name(const char* name) {
  if (!enabled()) return;
  buffer()->name = name;
}

void SpanTracer::begin(const char* name) {
  if (!enabled()) return;
  SpanEvent e;
  e.phase = SpanPhase::Begin;
  e.name = name;
  e.ts_ns = now_ns();
  emit(e);
}

void SpanTracer::end(const char* name, const char* arg_name,
                     const char* arg_str, double arg_num, bool arg_is_num) {
  if (!enabled()) return;
  SpanEvent e;
  e.phase = SpanPhase::End;
  e.name = name;
  e.ts_ns = now_ns();
  e.arg_name = arg_name;
  e.arg_str = arg_str;
  e.arg_num = arg_num;
  e.arg_is_num = arg_is_num;
  emit(e);
}

void SpanTracer::instant(const char* name, const char* arg_name,
                         const char* arg_str, double arg_num,
                         bool arg_is_num) {
  if (!enabled()) return;
  SpanEvent e;
  e.phase = SpanPhase::Instant;
  e.name = name;
  e.ts_ns = now_ns();
  e.arg_name = arg_name;
  e.arg_str = arg_str;
  e.arg_num = arg_num;
  e.arg_is_num = arg_is_num;
  emit(e);
}

uint64_t SpanTracer::flow_out(const char* name) {
  if (!enabled()) return 0;
  const uint64_t id = flow_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  SpanEvent e;
  e.phase = SpanPhase::FlowOut;
  e.name = name;
  e.ts_ns = now_ns();
  e.flow_id = id;
  emit(e);
  return id;
}

void SpanTracer::flow_in(const char* name, uint64_t id) {
  if (!enabled() || id == 0) return;
  SpanEvent e;
  e.phase = SpanPhase::FlowIn;
  e.name = name;
  e.ts_ns = now_ns();
  e.flow_id = id;
  emit(e);
}

json::Value SpanTracer::to_chrome_json() {
  json::Value events = json::Value::array();
  uint64_t dropped = 0;

  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : buffers_) {
    // Process metadata: one shared pid, per-buffer tid with an optional
    // human name for the track.
    {
      json::Value meta = json::Value::object();
      meta.set("name", "thread_name");
      meta.set("ph", "M");
      meta.set("pid", 1);
      meta.set("tid", static_cast<uint64_t>(buf->tid));
      json::Value args = json::Value::object();
      args.set("name", buf->name.empty()
                           ? "thread-" + std::to_string(buf->tid)
                           : buf->name);
      meta.set("args", std::move(args));
      events.push(std::move(meta));
    }

    // Chronological reconstruction of the ring. When the ring overflowed,
    // the surviving window starts mid-stream: any End whose Begin was
    // overwritten arrives before its opener and must be discarded to keep
    // the exported B/E pairs balanced. RAII guarantees proper nesting per
    // thread, so the orphans are exactly the unmatched Ends seen while the
    // reconstruction's open-span depth is zero.
    const size_t cap = buf->ring.size();
    const uint64_t n = std::min<uint64_t>(buf->count, cap);
    const uint64_t first = buf->count - n;  // index of oldest surviving event
    dropped += first;

    size_t depth = 0;
    uint64_t last_ts = 0;
    for (uint64_t i = 0; i < n; ++i) {
      const SpanEvent& e = buf->ring[(first + i) % cap];
      last_ts = std::max(last_ts, e.ts_ns);
      if (e.phase == SpanPhase::End) {
        if (depth == 0) {
          ++dropped;  // opener was overwritten
          continue;
        }
        --depth;
      } else if (e.phase == SpanPhase::Begin) {
        ++depth;
      }

      json::Value ev = json::Value::object();
      ev.set("name", e.name);
      switch (e.phase) {
        case SpanPhase::Begin:
          ev.set("ph", "B");
          ev.set("cat", "rfn");
          break;
        case SpanPhase::End:
          ev.set("ph", "E");
          ev.set("cat", "rfn");
          break;
        case SpanPhase::Instant:
          ev.set("ph", "i");
          ev.set("cat", "rfn");
          ev.set("s", "g");
          break;
        case SpanPhase::FlowOut:
          ev.set("ph", "s");
          ev.set("cat", "flow");
          ev.set("id", e.flow_id);
          break;
        case SpanPhase::FlowIn:
          ev.set("ph", "f");
          ev.set("cat", "flow");
          ev.set("id", e.flow_id);
          ev.set("bp", "e");
          break;
      }
      ev.set("pid", 1);
      ev.set("tid", static_cast<uint64_t>(buf->tid));
      ev.set("ts", to_us(e.ts_ns));
      if (e.arg_name != nullptr) {
        json::Value args = json::Value::object();
        if (e.arg_is_num)
          args.set(e.arg_name, e.arg_num);
        else
          args.set(e.arg_name, e.arg_str == nullptr ? "" : e.arg_str);
        ev.set("args", std::move(args));
      }
      events.push(std::move(ev));
    }

    // Spans still open at export (or whose End fell victim to a concurrent
    // writer — the contract forbids that, but a synthesized close keeps the
    // file loadable either way) get an End at the thread's last timestamp.
    for (; depth > 0; --depth) {
      json::Value ev = json::Value::object();
      ev.set("name", "(unclosed)");
      ev.set("ph", "E");
      ev.set("cat", "rfn");
      ev.set("pid", 1);
      ev.set("tid", static_cast<uint64_t>(buf->tid));
      ev.set("ts", to_us(last_ts));
      events.push(std::move(ev));
    }
  }

  json::Value doc = json::Value::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", "ms");
  json::Value other = json::Value::object();
  other.set("trace_version", "rfn-spans-v1");
  other.set("dropped_events", dropped);
  doc.set("otherData", std::move(other));
  return doc;
}

void SpanTracer::write_chrome_json(std::ostream& os) {
  os << to_chrome_json().dump(1) << "\n";
}

}  // namespace rfn
