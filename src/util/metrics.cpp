#include "util/metrics.hpp"

namespace rfn {

MetricsSnapshot MetricsSnapshot::delta(const MetricsSnapshot& before) const {
  MetricsSnapshot out;
  for (const auto& [name, v] : values) {
    const auto it = before.values.find(name);
    out.values[name] = v - (it == before.values.end() ? 0.0 : it->second);
  }
  return out;
}

namespace {
// This thread's binding (MetricsScope); nullptr = the process registry.
thread_local MetricsRegistry* t_bound_registry = nullptr;
}  // namespace

MetricsRegistry& MetricsRegistry::process() {
  // Leaked intentionally: engines may record from detached executor threads
  // during process teardown, so the registry must outlive static dtors.
  static MetricsRegistry* g = new MetricsRegistry();
  return *g;
}

MetricsRegistry& MetricsRegistry::global() {
  return t_bound_registry != nullptr ? *t_bound_registry : process();
}

MetricsRegistry* MetricsRegistry::current_binding() {
  return t_bound_registry;
}

MetricsRegistry* MetricsRegistry::bind(MetricsRegistry* reg) {
  MetricsRegistry* prev = t_bound_registry;
  t_bound_registry = reg;
  return prev;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

Timer& MetricsRegistry::timer(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = timers_.find(name);
  if (it != timers_.end()) return *it->second;
  return *timers_.emplace(std::string(name), std::make_unique<Timer>())
              .first->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  MetricsSnapshot s;
  for (const auto& [name, c] : counters_)
    s.values[name] = static_cast<double>(c->value());
  for (const auto& [name, g] : gauges_) {
    s.values[name] = static_cast<double>(g->value());
    s.values[name + ".max"] = static_cast<double>(g->max());
  }
  for (const auto& [name, t] : timers_) {
    s.values[name + ".count"] = static_cast<double>(t->count());
    s.values[name + ".seconds"] = t->total_seconds();
    s.values[name + ".max_seconds"] = t->max_seconds();
  }
  return s;
}

json::Value MetricsRegistry::to_json(const MetricsSnapshot* baseline) const {
  const auto base = [baseline](const std::string& name) {
    return baseline == nullptr ? 0.0 : baseline->value(name);
  };
  std::lock_guard<std::mutex> lk(mu_);
  json::Value counters = json::Value::object();
  for (const auto& [name, c] : counters_) {
    const double v = static_cast<double>(c->value()) - base(name);
    counters.set(name, v < 0.0 ? 0.0 : v);
  }
  json::Value gauges = json::Value::object();
  for (const auto& [name, g] : gauges_)
    gauges.set(name, json::Value::object()
                         .set("value", g->value())
                         .set("max", g->max()));
  json::Value timers = json::Value::object();
  for (const auto& [name, t] : timers_) {
    const double count =
        static_cast<double>(t->count()) - base(name + ".count");
    const double seconds = t->total_seconds() - base(name + ".seconds");
    timers.set(name, json::Value::object()
                         .set("count", count < 0.0 ? 0.0 : count)
                         .set("seconds", seconds < 0.0 ? 0.0 : seconds)
                         .set("max_seconds", t->max_seconds()));
  }
  return json::Value::object()
      .set("counters", std::move(counters))
      .set("gauges", std::move(gauges))
      .set("timers", std::move(timers));
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [name, c] : counters_) c->reset();
  for (const auto& [name, g] : gauges_) g->reset();
  for (const auto& [name, t] : timers_) t->reset();
}

}  // namespace rfn
