#pragma once
// Cooperative cancellation for the engine portfolio.
//
// A CancelToken is an atomic flag engines poll at their step boundaries (per
// image step, per ATPG backtrack batch, per simulated cycle). Tokens can
// carry a wall-clock budget and chain to a parent token, so one poll answers
// "was I cancelled, did my budget expire, or was the whole race called off".
// Engines never block on a token and never get interrupted mid-step: all
// cancellation in this codebase is polling-based, which keeps every engine's
// data structures in a sane state when it unwinds.

#include <atomic>

#include "util/stopwatch.hpp"

namespace rfn {

class CancelToken {
 public:
  CancelToken() = default;
  /// Token with a wall-clock budget (negative = unlimited) that starts at
  /// construction, optionally chained to a parent: cancelled() reports true
  /// as soon as the flag is raised, the budget expires, or the parent is
  /// cancelled.
  explicit CancelToken(double time_limit_s, const CancelToken* parent = nullptr)
      : deadline_(time_limit_s), parent_(parent) {}

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void cancel() { flag_.store(true, std::memory_order_relaxed); }

  bool cancelled() const {
    if (flag_.load(std::memory_order_relaxed)) return true;
    if (deadline_.expired()) return true;
    return parent_ != nullptr && parent_->cancelled();
  }

 private:
  std::atomic<bool> flag_{false};
  Deadline deadline_;  // default-constructed: no budget
  const CancelToken* parent_ = nullptr;
};

/// Null-safe poll helper for the optional `cancel` members of engine option
/// structs: engines carry a `const CancelToken*` that defaults to nullptr so
/// non-racing callers pay nothing.
inline bool should_stop(const CancelToken* token) {
  return token != nullptr && token->cancelled();
}

}  // namespace rfn
