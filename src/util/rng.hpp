#pragma once
// Deterministic xoshiro256** RNG.
//
// Benches and tests need run-to-run reproducible randomness; std::mt19937_64
// would also work but its state is bulky and seeding is awkward. All
// randomized engines in this repo take an explicit Rng so nothing depends on
// global state.

#include <cstdint>

namespace rfn {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding, the reference recommendation for xoshiro.
    uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9e3779b97f4a7c15ULL;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      s = x ^ (x >> 31);
    }
  }

  uint64_t next() {
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be nonzero.
  uint64_t below(uint64_t bound) { return next() % bound; }

  bool flip() { return (next() & 1) != 0; }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

 private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

}  // namespace rfn
