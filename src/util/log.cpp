#include "util/log.hpp"

#include <cstdarg>
#include <cstdlib>
#include <vector>

namespace rfn {

namespace {
LogLevel g_level = LogLevel::Warn;
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

namespace detail {

void log_line(LogLevel level, const char* tag, const std::string& msg) {
  if (static_cast<int>(g_level) < static_cast<int>(level)) return;
  std::fprintf(stderr, "[rfn:%s] %s\n", tag, msg.c_str());
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    out.assign(buf.data(), static_cast<size_t>(needed));
  }
  va_end(args);
  return out;
}

}  // namespace detail

void fatal(const std::string& msg) {
  std::fprintf(stderr, "[rfn:fatal] %s\n", msg.c_str());
  std::abort();
}

}  // namespace rfn
