#pragma once
// Result-table formatting shared by the Table 1 / Table 2 benches.
//
// The paper reports results as fixed-column ASCII tables; benches format
// their rows through this helper so all tables render uniformly and
// EXPERIMENTS.md can quote the output verbatim.

#include <string>
#include <vector>

#include "util/metrics.hpp"

namespace rfn {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Renders with column widths fitted to content, e.g.
  ///   property | regs in COI | time (s) | result
  ///   ---------+-------------+----------+-------
  ///   mutex    | 4982        | 12.3     | T
  std::string to_string() const;

  /// Prints to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Helpers for formatting table cells.
std::string fmt_int(int64_t v);
std::string fmt_double(double v, int precision = 1);

/// Renders the portfolio scheduler's metrics ("portfolio.*" in the given
/// snapshot — typically a delta over one run) as a table: one summary row
/// (races, jobs launched/cancelled/inconclusive, wall time) plus one row per
/// engine in the winner histogram. The CLI and bench binaries print this to
/// report engine efficiency next to their timing rows.
std::string format_portfolio_stats(const MetricsSnapshot& s);

/// Renders per-engine effort from the registry snapshot as a table: one row
/// per engine namespace (BDD reachability, combinational/sequential ATPG,
/// hybrid trace extraction) with calls, search effort and wall time where
/// recorded. Printed by the CLI after every verify run, portfolio or not.
std::string format_engine_stats(const MetricsSnapshot& s);

}  // namespace rfn
