#pragma once
// Result-table formatting shared by the Table 1 / Table 2 benches.
//
// The paper reports results as fixed-column ASCII tables; benches format
// their rows through this helper so all tables render uniformly and
// EXPERIMENTS.md can quote the output verbatim.

#include <string>
#include <vector>

namespace rfn {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Renders with column widths fitted to content, e.g.
  ///   property | regs in COI | time (s) | result
  ///   ---------+-------------+----------+-------
  ///   mutex    | 4982        | 12.3     | T
  std::string to_string() const;

  /// Prints to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Helpers for formatting table cells.
std::string fmt_int(int64_t v);
std::string fmt_double(double v, int precision = 1);

}  // namespace rfn
