#include "util/executor.hpp"

#include "util/metrics.hpp"
#include "util/prof.hpp"

namespace rfn {

Executor::Executor(size_t workers) {
  threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void Executor::run_task(std::function<void()>& fn) {
  const int64_t cpu0 = prof::thread_cpu_ns();
  fn();
  cpu_ns_.fetch_add(prof::thread_cpu_ns() - cpu0, std::memory_order_relaxed);
}

void Executor::submit(std::function<void()> fn) {
  if (threads_.empty()) {
    run_task(fn);
    return;
  }
  // Metrics binding travels with the task: a worker records into the
  // registry the submitter was bound to (rfn_serve's per-request isolation
  // depends on this — portfolio jobs run here).
  MetricsRegistry* bound = MetricsRegistry::current_binding();
  std::function<void()> task = std::move(fn);
  if (bound != nullptr)
    task = [bound, f = std::move(task)] {
      MetricsScope scope(bound);
      f();
    };
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void Executor::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    run_task(job);
  }
}

}  // namespace rfn
