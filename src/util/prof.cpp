#include "util/prof.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#if defined(__unix__) || defined(__APPLE__)
#include <time.h>
#include <unistd.h>
#endif

namespace rfn::prof {

int64_t thread_cpu_ns() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
#else
  return 0;
#endif
}

int64_t process_cpu_ns() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
#else
  return 0;
#endif
}

int64_t read_rss_bytes() {
#if defined(__linux__)
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long long size = 0, resident = 0;
  const int n = std::fscanf(f, "%lld %lld", &size, &resident);
  std::fclose(f);
  if (n != 2) return 0;
  return static_cast<int64_t>(resident) * sysconf(_SC_PAGESIZE);
#else
  return 0;
#endif
}

RssLog& RssLog::global() {
  static RssLog* log = new RssLog();  // leaked like the metrics registry:
  return *log;                        // samplers may outlive static dtors
}

void RssLog::enable() {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = true;
  watch_.reset();
  calls_ = 0;
  stride_ = 1;
  peak_ = 0;
  samples_.clear();
}

void RssLog::disable() {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = false;
}

bool RssLog::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enabled_;
}

int64_t RssLog::sample() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return 0;
  const int64_t bytes = read_rss_bytes();
  record_locked(bytes);
  return bytes;
}

void RssLog::record(int64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return;
  record_locked(bytes);
}

void RssLog::record_locked(int64_t bytes) {
  if (bytes > peak_) peak_ = bytes;  // peak is exact even when thinned
  if (calls_++ % stride_ != 0) return;
  samples_.push_back({watch_.milliseconds(), bytes});
  if (samples_.size() >= kMaxSamples) {
    // Thin in place: keep every other sample and accept half as often from
    // now on, so the timeline stays bounded with uniform-ish spacing.
    size_t out = 0;
    for (size_t i = 0; i < samples_.size(); i += 2) samples_[out++] = samples_[i];
    samples_.resize(out);
    stride_ *= 2;
  }
}

int64_t RssLog::peak_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_;
}

std::vector<RssSample> RssLog::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

json::Value build_prof_json(const MetricsSnapshot& baseline,
                            const MetricsSnapshot& now, double wall_s,
                            double cpu_s, size_t workers) {
  json::Value doc = json::Value::object();
  doc.set("format", "rfn-prof-v1");
  doc.set("wall_ms", wall_s * 1e3);
  doc.set("total_cpu_ms", cpu_s * 1e3);
  doc.set("workers", static_cast<uint64_t>(workers));

  // Per-engine CPU: every `engine.cpu.<name>.seconds` timer total, relative
  // to the run's baseline. std::map keys are sorted, so row order is stable.
  const std::string prefix = "engine.cpu.";
  const std::string suffix = ".seconds";
  json::Value engines = json::Value::array();
  double engine_cpu_s = 0.0;
  for (const auto& [name, value] : now.values) {
    if (name.rfind(prefix, 0) != 0) continue;
    if (name.size() <= prefix.size() + suffix.size()) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
      continue;
    const double cpu =
        std::max(0.0, value - baseline.value(name));
    const std::string engine =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    json::Value row = json::Value::object();
    row.set("name", engine);
    row.set("cpu_ms", cpu * 1e3);
    engines.push(std::move(row));
    engine_cpu_s += cpu;
  }
  doc.set("engines", std::move(engines));

  json::Value portfolio = json::Value::object();
  portfolio.set("race_wall_ms",
                std::max(0.0, now.value("portfolio.race.seconds") -
                                  baseline.value("portfolio.race.seconds")) *
                    1e3);
  portfolio.set("race_cpu_ms", engine_cpu_s * 1e3);
  doc.set("portfolio", std::move(portfolio));

  // Subsystem heap peaks are gauge maxima — not baseline-differenced (a
  // high-water mark is not additive across runs), read raw like every gauge.
  json::Value subsystems = json::Value::object();
  for (const char* sub : {"bdd", "sat"}) {
    const std::string gauge = std::string(sub) + ".heap_bytes";
    json::Value s = json::Value::object();
    s.set("live_bytes", now.value(gauge));
    s.set("peak_bytes", now.value(gauge + ".max"));
    subsystems.set(sub, std::move(s));
  }
  doc.set("subsystems", std::move(subsystems));

  json::Value rss = json::Value::object();
  rss.set("peak_bytes", RssLog::global().peak_bytes());
  json::Value samples = json::Value::array();
  for (const RssSample& s : RssLog::global().samples()) {
    json::Value o = json::Value::object();
    o.set("t_ms", s.t_ms);
    o.set("bytes", s.bytes);
    samples.push(std::move(o));
  }
  rss.set("samples", std::move(samples));
  doc.set("rss", std::move(rss));
  return doc;
}

std::string folded_stacks(const json::Value& chrome_doc) {
  // The exporter guarantees per-tid balanced B/E pairs in timestamp order
  // (tests/trace_span_test.cpp pins that), so a plain stack walk suffices.
  struct Frame {
    std::string name;
    double ts_us = 0.0;
    double child_us = 0.0;
  };
  std::map<uint64_t, std::string> thread_names;
  std::map<uint64_t, std::vector<Frame>> stacks;
  std::map<std::string, double> self_us;

  const json::Value* events = chrome_doc.find("traceEvents");
  if (events == nullptr) return "";
  for (const json::Value& e : events->items()) {
    const std::string& ph = e.find("ph")->as_string();
    const uint64_t tid = e.find("tid")->as_uint();
    if (ph == "M") {
      if (e.find("name")->as_string() == "thread_name")
        if (const json::Value* n = e.find_path("args.name"))
          thread_names[tid] = n->as_string();
      continue;
    }
    if (ph == "B") {
      stacks[tid].push_back({e.find("name")->as_string(),
                             e.find("ts")->as_double(), 0.0});
    } else if (ph == "E") {
      std::vector<Frame>& stack = stacks[tid];
      if (stack.empty()) continue;  // defensive; the exporter never orphans
      const Frame top = stack.back();
      stack.pop_back();
      const double dur = e.find("ts")->as_double() - top.ts_us;
      std::string key = thread_names.count(tid)
                            ? thread_names[tid]
                            : "tid-" + std::to_string(tid);
      for (const Frame& f : stack) key += ";" + f.name;
      key += ";" + top.name;
      self_us[key] += std::max(0.0, dur - top.child_us);
      if (!stack.empty()) stack.back().child_us += dur;
    }
  }

  std::string out;
  for (const auto& [key, us] : self_us) {
    out += key;
    out += ' ';
    out += std::to_string(static_cast<long long>(std::llround(us)));
    out += '\n';
  }
  return out;
}

}  // namespace rfn::prof
