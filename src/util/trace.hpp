#pragma once
// Causal span tracing for the engine stack: RAII spans recorded into
// lock-free per-thread ring buffers, exported as Chrome trace-event JSON so
// any run opens directly in Perfetto / chrome://tracing.
//
// The metrics registry (util/metrics) answers *how much*; spans answer
// *where the wall-clock went*: which engine stalled a portfolio race, which
// BDD reordering blocked an image step, how long a race loser burned before
// it noticed cancellation. The cost model mirrors the registry's two tiers:
//   * disabled (the default), every recording call is one relaxed atomic
//     load — engines keep their spans compiled in unconditionally;
//   * enabled, a span begin/end is a steady_clock read plus one store into
//     the calling thread's own ring buffer. No locks, no allocation: names
//     and string arguments are string literals or strings interned once
//     through SpanTracer::intern (a mutex, at setup boundaries only).
//
// Causality. Within a thread, parent/child is the begin/end nesting the
// Chrome format derives from B/E pairs. Across threads — the portfolio
// scheduler handing a job to an executor worker — the submitting thread
// emits a flow-origin event (flow_out) and the worker binds its job span to
// the same id (flow_in); Perfetto draws the arrow.
//
// Thread-safety contract: enable(), disable() and the exporters must run at
// quiescent points — no concurrent emission. Emission itself is safe from
// any thread. The exporter re-reads every thread's buffer; the caller's
// synchronization with those threads (Portfolio::race joining its started
// jobs, Watchdog::stop joining the monitor) is what makes that race-free.
//
// Export (schema "rfn-spans-v1"): {"traceEvents":[...], "displayTimeUnit":
// "ms", "otherData":{"trace_version":"rfn-spans-v1","dropped_events":N}}.
// The exporter guarantees balanced B/E pairs per thread and per-thread
// monotonic timestamps even after ring overwrite: orphaned ends (their
// begin was overwritten) are discarded and spans still open at export get a
// synthesized end at the thread's last timestamp.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace rfn {

enum class SpanPhase : uint8_t { Begin, End, Instant, FlowOut, FlowIn };

/// One ring-buffer record. `name`, `arg_name` and `arg_str` must be string
/// literals or pointers obtained from SpanTracer::intern — only the pointer
/// is stored.
struct SpanEvent {
  SpanPhase phase = SpanPhase::Instant;
  const char* name = nullptr;
  uint64_t ts_ns = 0;      // since the tracer's enable() epoch
  uint64_t flow_id = 0;    // FlowOut / FlowIn correlation id
  const char* arg_name = nullptr;  // optional single key/value payload
  const char* arg_str = nullptr;
  double arg_num = 0.0;
  bool arg_is_num = false;
};

class SpanTracer {
 public:
  /// The process-wide tracer every engine records into.
  static SpanTracer& global();

  SpanTracer() = default;
  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  /// Starts a fresh trace: drops all previous buffers, re-arms the epoch
  /// clock and caps each thread's ring at `events_per_thread` records
  /// (oldest overwritten first). Quiescent callers only.
  void enable(size_t events_per_thread = 1u << 16);
  void disable() { enabled_.store(false, std::memory_order_release); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Copies `s` into tracer-owned storage and returns a stable pointer,
  /// deduplicated per distinct string. For dynamic span names (engine names
  /// from PortfolioJob); literals need no interning.
  const char* intern(std::string_view s);

  /// Names the calling thread's track in the exported trace. No-op while
  /// disabled.
  void set_thread_name(const char* name);

  // --- recording (every call is a no-op while disabled) ---

  void begin(const char* name);
  void end(const char* name, const char* arg_name = nullptr,
           const char* arg_str = nullptr, double arg_num = 0.0,
           bool arg_is_num = false);
  /// Point event (scope: global) — e.g. the watchdog's budget trip.
  void instant(const char* name, const char* arg_name = nullptr,
               const char* arg_str = nullptr, double arg_num = 0.0,
               bool arg_is_num = false);
  /// Emits a flow origin bound to a fresh id on the calling thread and
  /// returns the id (0 while disabled — flow_in ignores 0).
  uint64_t flow_out(const char* name);
  /// Binds the calling thread's enclosing span to flow `id`.
  void flow_in(const char* name, uint64_t id);

  // --- export (quiescent callers only) ---

  /// The whole trace as one Chrome trace-event document.
  json::Value to_chrome_json();
  void write_chrome_json(std::ostream& os);

 private:
  struct ThreadBuffer {
    uint32_t tid = 0;
    std::string name;
    std::vector<SpanEvent> ring;
    uint64_t count = 0;  // total emitted; count > ring.size() => overwrite
  };

  ThreadBuffer* buffer();
  void emit(const SpanEvent& e);
  uint64_t now_ns() const;

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> generation_{0};  // bumped by enable(); invalidates TLS
  std::atomic<uint64_t> flow_counter_{0};
  std::atomic<int64_t> epoch_ns_{0};  // steady_clock at enable()

  mutable std::mutex mu_;  // buffers_, interned_, capacity_, next_tid_
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::vector<std::unique_ptr<std::string>> interned_;
  size_t capacity_ = 1u << 16;
  uint32_t next_tid_ = 1;
};

/// RAII span: begin on construction, end at scope exit (or an explicit
/// end()). A span constructed while the tracer is disabled costs one atomic
/// load and never emits. annotate() attaches one key/value to the end event
/// (last call wins) — the exporter renders it as the span's args.
class Span {
 public:
  explicit Span(const char* name)
      : name_(SpanTracer::global().enabled() ? name : nullptr) {
    if (name_ != nullptr) SpanTracer::global().begin(name_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  void annotate(const char* key, const char* interned_value) {
    arg_name_ = key;
    arg_str_ = interned_value;
    arg_is_num_ = false;
  }
  void annotate(const char* key, double value) {
    arg_name_ = key;
    arg_num_ = value;
    arg_is_num_ = true;
  }

  /// Idempotent early end.
  void end() {
    if (name_ == nullptr) return;
    SpanTracer::global().end(name_, arg_name_, arg_str_, arg_num_, arg_is_num_);
    name_ = nullptr;
  }

 private:
  const char* name_;
  const char* arg_name_ = nullptr;
  const char* arg_str_ = nullptr;
  double arg_num_ = 0.0;
  bool arg_is_num_ = false;
};

}  // namespace rfn
