#pragma once
// Resource watchdog: a monitor thread that enforces per-run wall-clock,
// BDD-node and process-memory budgets by firing a CancelToken, so a run
// that outgrows its budget degrades to a clean `resource-out` verdict
// instead of dying on an allocator limit or hanging past its deadline.
//
// Enforcement is cooperative — the same polling-based cancellation the
// portfolio scheduler already uses: the watchdog only sets the token, and
// engines notice at their step boundaries. The node budget reads a relaxed
// atomic probe the BDD manager publishes (BddMgr::set_live_node_probe);
// the watchdog never touches manager internals, so there is no data race
// with the allocator (TSan-clean by construction). The memory budget reads
// process RSS (util/prof's /proc/self/statm reader) each poll; the same
// poll feeds the profiler's RSS timeline (prof::RssLog) when sampling is
// requested, so --prof-json gets its timeline for free on budgeted runs.
//
// Lifecycle: construct with budgets + victim token, start(), and stop()
// (idempotent, also run by the destructor) before reading trip state or
// exporting spans — stop() joins the monitor thread, which is the
// happens-before edge for both.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "util/cancel.hpp"

namespace rfn {

struct WatchdogOptions {
  double wall_budget_s = -1.0;    // <= 0: no wall budget
  int64_t bdd_node_budget = 0;    // <= 0: no node budget
  int64_t mem_budget_mb = 0;      // <= 0: no RSS budget
  /// Sample RSS into prof::RssLog each poll even with no budget set — the
  /// monitor thread then runs purely as the profiler's sampler.
  bool sample_rss = false;
  double poll_interval_s = 0.01;
};

class Watchdog {
 public:
  /// `victim` must outlive the watchdog. The watchdog does not start
  /// monitoring until start().
  Watchdog(const WatchdogOptions& opt, CancelToken* victim)
      : opt_(opt), victim_(victim) {}
  ~Watchdog() { stop(); }
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Spawns the monitor thread. No-op when no budget is set and RSS
  /// sampling was not requested.
  void start();
  /// Joins the monitor thread; idempotent.
  void stop();

  /// Engines publish the current BDD live-node count here (the RFN loop
  /// wires it to BddMgr::set_live_node_probe each iteration).
  std::atomic<int64_t>* node_probe() { return &bdd_nodes_; }

  bool tripped() const { return tripped_.load(std::memory_order_acquire); }
  // Valid only after tripped() returned true (release/acquire on tripped_).
  const char* trip_reason() const { return reason_; }
  double trip_seconds() const { return trip_seconds_; }
  int64_t trip_bdd_nodes() const { return trip_nodes_; }
  int64_t trip_rss_bytes() const { return trip_rss_; }

 private:
  void run();

  WatchdogOptions opt_;
  CancelToken* victim_;
  std::atomic<int64_t> bdd_nodes_{0};

  std::atomic<bool> tripped_{false};
  const char* reason_ = "";
  double trip_seconds_ = 0.0;
  int64_t trip_nodes_ = 0;
  int64_t trip_rss_ = 0;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool started_ = false;
  std::thread thread_;
};

}  // namespace rfn
