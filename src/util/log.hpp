#pragma once
// Lightweight leveled logging for the RFN tool suite.
//
// Engines in this repo (BDD, ATPG, model checker, CEGAR loop) report
// progress through this single facility so that verbosity can be tuned
// globally from benches/examples without threading a logger object through
// every call site.

#include <cstdio>
#include <string>

namespace rfn {

enum class LogLevel : int {
  Silent = 0,
  Error = 1,
  Warn = 2,
  Info = 3,
  Debug = 4,
  Trace = 5,
};

/// Global log level. Defaults to Warn so tests and benches stay quiet.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_line(LogLevel level, const char* tag, const std::string& msg);
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
}  // namespace detail

/// printf-style logging macros. The format expansion is skipped entirely
/// when the level is disabled, so Debug/Trace logging in hot loops is cheap.
#define RFN_LOG_AT(level, tag, ...)                                      \
  do {                                                                   \
    if (static_cast<int>(::rfn::log_level()) >= static_cast<int>(level)) \
      ::rfn::detail::log_line(level, tag, ::rfn::detail::format(__VA_ARGS__)); \
  } while (0)

#define RFN_ERROR(...) RFN_LOG_AT(::rfn::LogLevel::Error, "error", __VA_ARGS__)
#define RFN_WARN(...) RFN_LOG_AT(::rfn::LogLevel::Warn, "warn", __VA_ARGS__)
#define RFN_INFO(...) RFN_LOG_AT(::rfn::LogLevel::Info, "info", __VA_ARGS__)
#define RFN_DEBUG(...) RFN_LOG_AT(::rfn::LogLevel::Debug, "debug", __VA_ARGS__)
#define RFN_TRACE(...) RFN_LOG_AT(::rfn::LogLevel::Trace, "trace", __VA_ARGS__)

/// Fatal invariant violation: log and abort. Used for internal engine
/// invariants that indicate a bug in this library, never for user errors.
[[noreturn]] void fatal(const std::string& msg);

#define RFN_CHECK(cond, ...)                                           \
  do {                                                                 \
    if (!(cond))                                                       \
      ::rfn::fatal(::rfn::detail::format("check failed: %s: ", #cond) + \
                   ::rfn::detail::format(__VA_ARGS__));                \
  } while (0)

}  // namespace rfn
