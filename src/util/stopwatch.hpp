#pragma once
// Monotonic stopwatch used for engine time limits and result tables.

#include <chrono>

namespace rfn {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed wall-clock seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Budget shared across the engines of one verification run. Engines poll
/// expired() at coarse boundaries (per image step, per ATPG backtrack batch)
/// so a run never overshoots its limit by more than one engine step.
class Deadline {
 public:
  /// No limit.
  Deadline() : limit_seconds_(-1.0) {}
  explicit Deadline(double limit_seconds) : limit_seconds_(limit_seconds) {}

  bool expired() const {
    return limit_seconds_ >= 0.0 && watch_.seconds() >= limit_seconds_;
  }

  double remaining_seconds() const {
    if (limit_seconds_ < 0.0) return 1e30;
    const double rem = limit_seconds_ - watch_.seconds();
    return rem > 0.0 ? rem : 0.0;
  }

  double elapsed_seconds() const { return watch_.seconds(); }

 private:
  Stopwatch watch_;
  double limit_seconds_;
};

}  // namespace rfn
