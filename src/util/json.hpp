#pragma once
// Minimal JSON document model with a writer and a strict parser.
//
// The observability layer (util/metrics, core/trace_json, the bench JSON
// emitters) speaks one schema family, and the tests round-trip it; this is
// the shared value type all of them build and consume. Objects preserve
// insertion order so emitted documents are stable across runs — the golden
// schema checks and the bench regression gate diff them textually.
//
// Deliberately small: no exceptions (parse errors come back through an
// out-parameter), no SAX interface, doubles for every number (uint64
// counters survive to 2^53, far beyond any metric this repo produces).

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rfn::json {

class Value;

/// Insertion-ordered key/value list. Lookup is linear; observability
/// objects have tens of keys, not thousands.
using Member = std::pair<std::string, Value>;

class Value {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Value() = default;  // null
  Value(std::nullptr_t) {}
  Value(bool b) : kind_(Kind::Bool), bool_(b) {}
  Value(double d) : kind_(Kind::Number), num_(d) {}
  Value(int i) : kind_(Kind::Number), num_(i) {}
  Value(int64_t i) : kind_(Kind::Number), num_(static_cast<double>(i)) {}
  Value(uint64_t u) : kind_(Kind::Number), num_(static_cast<double>(u)) {}
  Value(const char* s) : kind_(Kind::String), str_(s) {}
  Value(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
  Value(std::string_view s) : kind_(Kind::String), str_(s) {}

  static Value array() {
    Value v;
    v.kind_ = Kind::Array;
    return v;
  }
  static Value object() {
    Value v;
    v.kind_ = Kind::Object;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_bool() const { return kind_ == Kind::Bool; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_object() const { return kind_ == Kind::Object; }

  bool as_bool() const { return bool_; }
  double as_double() const { return num_; }
  uint64_t as_uint() const { return num_ < 0 ? 0 : static_cast<uint64_t>(num_); }
  const std::string& as_string() const { return str_; }
  const std::vector<Value>& items() const { return items_; }
  const std::vector<Member>& members() const { return members_; }

  /// Array append. Converts a null value into an array on first push.
  Value& push(Value v);

  /// Object insert-or-overwrite, preserving first-insertion order. Converts
  /// a null value into an object on first set. Returns *this for chaining.
  Value& set(std::string_view key, Value v);

  /// Object lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;
  /// Dotted-path lookup ("reach.status"); nullptr when any hop is missing.
  const Value* find_path(std::string_view dotted) const;

  /// Serializes. indent < 0 emits the compact single-line form; indent >= 0
  /// pretty-prints with that many spaces per level.
  std::string dump(int indent = -1) const;

  friend bool operator==(const Value& a, const Value& b);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Value> items_;
  std::vector<Member> members_;
};

/// Escapes and quotes a string per RFC 8259.
std::string escape(std::string_view s);

/// Strict parser for one JSON document (trailing whitespace allowed,
/// trailing garbage is an error). On failure returns null and, when `error`
/// is non-null, stores a one-line diagnostic with the byte offset.
Value parse(std::string_view text, std::string* error = nullptr);

}  // namespace rfn::json
