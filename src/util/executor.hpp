#pragma once
// Fixed-size worker pool for the engine-portfolio scheduler.
//
// A deliberately small executor: N std::threads draining one FIFO work
// queue. Submitted jobs are fire-and-forget; completion signalling is the
// caller's business (Portfolio::race layers a countdown latch on top). With
// zero workers the executor runs every job inline inside submit(), which is
// what lets a portfolio degrade to plain sequential execution — same code
// path, no threads, deterministic order.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/cancel.hpp"

namespace rfn {

class Executor {
 public:
  /// Spawns `workers` threads; 0 means inline execution inside submit().
  explicit Executor(size_t workers);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  size_t workers() const { return threads_.size(); }

  /// Enqueues `fn` (runs it before returning when the pool has no workers).
  void submit(std::function<void()> fn);

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace rfn
