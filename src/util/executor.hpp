#pragma once
// Fixed-size worker pool for the engine-portfolio scheduler.
//
// A deliberately small executor: N std::threads draining one FIFO work
// queue. Submitted jobs are fire-and-forget; completion signalling is the
// caller's business (Portfolio::race layers a countdown latch on top). With
// zero workers the executor runs every job inline inside submit(), which is
// what lets a portfolio degrade to plain sequential execution — same code
// path, no threads, deterministic order.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/cancel.hpp"

namespace rfn {

class Executor {
 public:
  /// Spawns `workers` threads; 0 means inline execution inside submit().
  explicit Executor(size_t workers);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  size_t workers() const { return threads_.size(); }

  /// Enqueues `fn` (runs it before returning when the pool has no workers).
  void submit(std::function<void()> fn);

  /// Total thread-CPU seconds consumed by submitted tasks so far — each
  /// task's CLOCK_THREAD_CPUTIME_ID delta, accumulated whether it ran on a
  /// worker or inline. Monotone; read at quiescent points (after the jobs
  /// whose cost you want have finished) for exact attribution.
  double cpu_seconds() const {
    return static_cast<double>(cpu_ns_.load(std::memory_order_relaxed)) * 1e-9;
  }

 private:
  void worker_loop();
  void run_task(std::function<void()>& fn);

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
  std::atomic<int64_t> cpu_ns_{0};
};

}  // namespace rfn
