#include "util/watchdog.hpp"

#include <chrono>

#include "util/metrics.hpp"
#include "util/prof.hpp"
#include "util/stopwatch.hpp"
#include "util/trace.hpp"

namespace rfn {

void Watchdog::start() {
  if (opt_.wall_budget_s <= 0.0 && opt_.bdd_node_budget <= 0 &&
      opt_.mem_budget_mb <= 0 && !opt_.sample_rss)
    return;
  started_ = true;
  // The monitor inherits the starter's metrics binding so its trip/poll
  // counters land in the same (possibly per-request) registry as the run it
  // watches.
  MetricsRegistry* bound = MetricsRegistry::current_binding();
  thread_ = std::thread([this, bound] {
    MetricsScope scope(bound);
    run();
  });
}

void Watchdog::stop() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  started_ = false;
}

void Watchdog::run() {
  SpanTracer::global().set_thread_name("watchdog");
  Stopwatch watch;
  const auto interval = std::chrono::duration<double>(
      opt_.poll_interval_s > 0.0 ? opt_.poll_interval_s : 0.01);
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    cv_.wait_for(lock, interval, [this] { return stop_requested_; });
    if (stop_requested_) return;

    const double elapsed = watch.seconds();
    const int64_t nodes = bdd_nodes_.load(std::memory_order_relaxed);
    // RSS is a syscall-backed read, so it only happens when something
    // consumes it: the memory budget, or the profiler's timeline.
    int64_t rss = 0;
    if (opt_.mem_budget_mb > 0 || opt_.sample_rss) {
      rss = prof::read_rss_bytes();
      prof::RssLog::global().record(rss);
    }
    const char* reason = nullptr;
    if (opt_.wall_budget_s > 0.0 && elapsed >= opt_.wall_budget_s)
      reason = "wall-budget";
    else if (opt_.bdd_node_budget > 0 && nodes >= opt_.bdd_node_budget)
      reason = "bdd-node-budget";
    else if (opt_.mem_budget_mb > 0 && rss >= opt_.mem_budget_mb * (1 << 20))
      reason = "mem-budget";
    if (reason == nullptr) continue;

    // One-shot trip: record the state, publish it (release pairs with the
    // acquire in tripped()), annotate the span trace, then cancel the run.
    reason_ = reason;
    trip_seconds_ = elapsed;
    trip_nodes_ = nodes;
    trip_rss_ = rss;
    tripped_.store(true, std::memory_order_release);
    MetricsRegistry::global().counter("watchdog.trips").add();
    MetricsRegistry::global()
        .counter(std::string("watchdog.trips.") + reason)
        .add();
    SpanTracer::global().instant("budget-trip", "reason", reason);
    victim_->cancel();
    return;
  }
}

}  // namespace rfn
