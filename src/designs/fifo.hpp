#pragma once
// Synchronous FIFO controller design (Table 1 rows psh_hf / psh_af /
// psh_full).
//
// A synthesizable-Verilog FIFO controller with a data-dependent pop path
// (entries whose lock bit is set cannot be popped), which couples the data
// memory into the cone of influence of the flag properties — reproducing
// the paper's shape: ~135 registers in the COI of each property, while the
// proofs only need the few dozen control registers.
//
// Properties (all True, each exported as a watchdog register `bad_*`):
//   psh_full — the occupancy counter never exceeds the capacity (pushes are
//              ignored when full);
//   psh_af   — the registered almost-full flag always agrees with the
//              occupancy threshold;
//   psh_hf   — likewise for the half-full flag.

#include <string>

#include "netlist/netlist.hpp"

namespace rfn::designs {

struct FifoParams {
  /// log2 of the FIFO capacity.
  size_t addr_bits = 4;
  /// Data width per entry (one extra lock bit is stored alongside).
  size_t data_bits = 6;
};

struct FifoDesign {
  Netlist netlist;
  GateId bad_push_full = kNullGate;
  GateId bad_push_af = kNullGate;
  GateId bad_push_hf = kNullGate;
  /// The generated Verilog source (elaborated through the RTL frontend).
  std::string verilog;
};

/// Emits the FIFO controller Verilog source for the given parameters.
std::string fifo_verilog(const FifoParams& p);

/// Generates and elaborates the design.
FifoDesign make_fifo(const FifoParams& p = {});

}  // namespace rfn::designs
