#include "designs/iu.hpp"

#include "netlist/builder.hpp"
#include "util/log.hpp"

namespace rfn::designs {

IuParams paper_scale_iu() {
  IuParams p;
  p.stages = 8;
  p.scoreboard_bits = 16;
  p.clutter_words = 300;
  p.word_bits = 8;
  return p;
}

IuDesign make_iu(const IuParams& p) {
  RFN_CHECK(p.stages >= 6 && p.scoreboard_bits >= 8, "IU parameters too small");
  NetBuilder b;

  const GateId icache_miss = b.input("icache_miss");
  const GateId dcache_miss = b.input("dcache_miss");
  const GateId trap_req = b.input("trap_req");
  const GateId branch = b.input("branch");
  const GateId chk_en = b.input("chk_en");
  const Word instr = b.input_word("instr", p.word_bits);

  // Datapath clutter: accumulators mixed from the instruction word through
  // adders, gated by the stall controller (wired below). The clutter parity
  // feeds back into the stall conditions, coupling it into every coverage
  // COI.
  std::vector<Word> clutter(p.clutter_words);
  for (size_t c = 0; c < p.clutter_words; ++c)
    clutter[c] = b.reg_word("acc" + std::to_string(c), p.word_bits, 0);

  GateId clutter_parity = b.constant(false);
  for (size_t c = 0; c < p.clutter_words; ++c)
    clutter_parity = b.xor_(clutter_parity, clutter[c][c % p.word_bits]);

  // One-hot stall controller: RUN, STALL_IC, STALL_DC, TRAP, RESUME.
  enum { RUN = 0, SIC = 1, SDC = 2, TRP = 3, RSM = 4 };
  Word stall(5);
  for (size_t s = 0; s < 5; ++s)
    stall[s] = b.reg("stall" + std::to_string(s), tri_of(s == RUN));
  // Forward declarations of control signals wired later (registers exist
  // already, so reading them here is fine).
  Word valid(p.stages);
  for (size_t s = 0; s < p.stages; ++s)
    valid[s] = b.reg("valid" + std::to_string(s), Tri::F);
  Word sb(p.scoreboard_bits);
  for (size_t i = 0; i < p.scoreboard_bits; ++i)
    sb[i] = b.reg("sb" + std::to_string(i), Tri::F);

  // A data-cache stall can only fire while the memory stage holds a valid
  // instruction — this couples the valid bits (and through them the decode
  // FSM and scoreboard) back into the stall controller, making the whole
  // control cluster strongly connected: every coverage set sees the same
  // COI, as the paper observes for its IU sets.
  const GateId dstall = b.and_n({dcache_miss, valid[2],
                                 b.not_(b.and_(chk_en, clutter_parity))});
  const GateId go_sic = b.and_(stall[RUN], icache_miss);
  const GateId go_sdc = b.and_n({stall[RUN], b.not_(icache_miss), dstall});
  const GateId go_trp = b.or_(b.and_(stall[SIC], trap_req), b.and_(stall[SDC], trap_req));
  const GateId sic_done = b.and_(stall[SIC], b.not_(b.or_(icache_miss, trap_req)));
  const GateId sdc_done = b.and_(stall[SDC], b.not_(b.or_(dcache_miss, trap_req)));
  const GateId trp_done = b.and_(stall[TRP], b.not_(trap_req));
  const GateId rsm_done = stall[RSM];
  b.set_next(stall[RUN],
             b.or_n({b.and_n({stall[RUN], b.not_(go_sic), b.not_(go_sdc)}), rsm_done}));
  b.set_next(stall[SIC], b.or_(go_sic, b.and_n({stall[SIC], b.not_(sic_done),
                                                b.not_(b.and_(stall[SIC], trap_req))})));
  b.set_next(stall[SDC], b.or_(go_sdc, b.and_n({stall[SDC], b.not_(sdc_done),
                                                b.not_(b.and_(stall[SDC], trap_req))})));
  b.set_next(stall[TRP], b.or_(go_trp, b.and_(stall[TRP], trap_req)));
  b.set_next(stall[RSM], b.or_n({sic_done, sdc_done, trp_done}));

  const GateId running = stall[RUN];

  // Decode FSM (binary, 3 bits, states 0..5 used; 6 and 7 unreachable).
  const Word dec = b.reg_word("dec", 3, 0);
  auto dec_is = [&](uint64_t v) { return b.eq_const(dec, v); };
  // 0 fetch -> 1 decode -> {2 fold, 3 single} -> 4 issue -> 5 commit -> 0
  Word dec_next = b.constant_word(0, 3);
  dec_next = b.mux_word(dec_is(0), dec_next, b.constant_word(1, 3));
  dec_next = b.mux_word(dec_is(1), dec_next,
                        b.mux_word(instr[0], b.constant_word(3, 3), b.constant_word(2, 3)));
  dec_next = b.mux_word(dec_is(2), dec_next, b.constant_word(4, 3));
  dec_next = b.mux_word(dec_is(3), dec_next, b.constant_word(4, 3));
  dec_next = b.mux_word(dec_is(4), dec_next, b.constant_word(5, 3));
  dec_next = b.mux_word(dec_is(5), dec_next, b.constant_word(0, 3));
  b.set_next_word(dec, b.mux_word(running, dec, dec_next));

  // Pipeline valid bits: shift while running, squash on branch/trap. Issue
  // is blocked when the scoreboard already tracks the target register.
  const GateId squash = b.or_(branch, trap_req);
  GateId conflict = b.constant(false);
  for (size_t i = 0; i < p.scoreboard_bits && i < 8; ++i) {
    const GateId tgt = b.eq_const(Word(instr.begin(), instr.begin() + 3), i);
    conflict = b.or_(conflict, b.and_(sb[i], tgt));
  }
  const GateId feed = b.and_n({running, dec_is(4), b.not_(conflict)});
  b.set_next(valid[0], b.and_(b.mux(running, valid[0], feed), b.not_(squash)));
  for (size_t s = 1; s < p.stages; ++s)
    b.set_next(valid[s],
               b.and_(b.mux(running, valid[s], valid[s - 1]), b.not_(squash)));

  // Scoreboard: a bit sets when issue targets it (low instr bits), clears
  // when the last pipeline stage retires it.
  for (size_t i = 0; i < p.scoreboard_bits; ++i) {
    const GateId tgt = b.eq_const(
        Word(instr.begin(), instr.begin() + 3), i % 8);
    const GateId set = b.and_(feed, tgt);
    const GateId clr = b.and_(valid[p.stages - 1], tgt);
    b.set_next(sb[i], b.or_(set, b.and_(sb[i], b.not_(clr))));
  }

  // Clutter updates: adder mixes gated by the stall controller.
  for (size_t c = 0; c < p.clutter_words; ++c) {
    Word mixed = b.add_word(clutter[c], c == 0 ? instr : clutter[c - 1]);
    b.set_next_word(clutter[c], b.mux_word(running, clutter[c], mixed));
  }

  // An observability anchor keeps everything live.
  GateId anchor = clutter_parity;
  for (size_t s = 0; s < 5; ++s) anchor = b.xor_(anchor, stall[s]);
  b.output("anchor", anchor);

  IuDesign d;
  // Coverage sets of 10 registers each, drawn from the control FSMs.
  d.coverage_sets = {
      {stall[0], stall[1], stall[2], stall[3], stall[4], valid[0], valid[1], valid[2],
       valid[3], valid[4]},
      {stall[0], stall[1], stall[2], stall[3], stall[4], dec[0], dec[1], dec[2], sb[0],
       sb[1]},
      {dec[0], dec[1], dec[2], sb[0], sb[1], sb[2], sb[3], sb[4], sb[5], sb[6]},
      {valid[0], valid[1], valid[2], valid[3], valid[4], valid[5], sb[0], sb[1], sb[2],
       sb[3]},
      {stall[0], stall[1], stall[2], stall[3], stall[4], dec[0], dec[1], dec[2],
       valid[0], valid[1]},
  };
  d.netlist = b.take();
  return d;
}

}  // namespace rfn::designs
