#pragma once
// The shipped generated designs behind the `builtin:` scheme — one place
// that fixes the parameterizations and the exported property outputs, shared
// by rfn_cli, rfn_check and the test suites so a certificate produced by one
// binary hashes identically when re-elaborated by another.

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace rfn::designs {

/// Builds builtin design `name` ("fifo", "processor", "iu", "usb") with the
/// canonical small parameterization and its property signals exported as
/// named outputs (fifo: bad_full_q/bad_af_q/bad_hf_q; processor:
/// bad_mutex/error_flag; iu: iu0..iu4; usb: usb1_*/usb2_*). Unknown names
/// set *ok = false and return an empty netlist.
Netlist make_builtin(const std::string& name, bool* ok);

/// The valid `builtin:` names, in the order make_builtin checks them. Error
/// messages list this set so a typo tells the user what would have worked —
/// the same convention RfnOptions::validate() uses for engine names.
const std::vector<std::string>& builtin_names();

}  // namespace rfn::designs
