#pragma once
// Processor-module design (Table 1 rows `mutex` and `error_flag`).
//
// A synthetic pipelined multi-unit processor control block sized to the
// paper's scale (~5,000 registers, ~100k gates in the property COI):
//   * U functional units, each with a busy FSM, a deep opcode pipeline, and
//     a block of result registers ("datapath clutter") that feeds back into
//     the unit's request logic — pulling everything into the COI of the
//     properties;
//   * a rotating one-hot arbiter granting the shared writeback bus;
//   * property `mutex` (True): at most one grant at a time — provable from
//     the arbiter core alone, a tiny fraction of the COI;
//   * property `error_flag` (False): a deliberately planted protocol bug —
//     unit 0 raises the flag when its grant collides with a pipeline flush
//     while a session counter holds a magic value, reachable only through a
//     specific ~30-cycle input sequence (the paper's violated property had
//     a 30-cycle error trace).

#include "netlist/netlist.hpp"

namespace rfn::designs {

struct ProcessorParams {
  size_t units = 8;
  size_t pipe_depth = 12;
  size_t pipe_width = 8;
  /// Result-register clutter per unit.
  size_t result_regs = 48;
  /// Session-counter width; the bug arms when the counter reaches
  /// 2^counter_bits - 8 (with pipeline delays this puts the shortest error
  /// trace around 2^counter_bits cycles).
  size_t counter_bits = 5;
};

struct ProcessorDesign {
  Netlist netlist;
  GateId bad_mutex = kNullGate;   // watchdog register, never 1 (True)
  GateId error_flag = kNullGate;  // watchdog register, reachable (False)
};

ProcessorDesign make_processor(const ProcessorParams& p = {});

/// Paper-scale parameters: ~5,000 registers in the COI.
ProcessorParams paper_scale_processor();

}  // namespace rfn::designs
