#include "designs/processor.hpp"

#include "netlist/builder.hpp"
#include "util/log.hpp"

namespace rfn::designs {

ProcessorParams paper_scale_processor() {
  ProcessorParams p;
  p.units = 10;
  p.pipe_depth = 16;
  p.pipe_width = 12;
  p.result_regs = 300;
  p.counter_bits = 5;
  return p;
}

ProcessorDesign make_processor(const ProcessorParams& p) {
  RFN_CHECK(p.units >= 2 && p.pipe_depth >= 2 && p.pipe_width >= 2,
            "processor parameters too small");
  NetBuilder b;
  const size_t U = p.units;

  // Per-unit structures.
  std::vector<GateId> request(U);
  std::vector<Word> state(U);        // 2-bit busy FSM: 0 idle, 1 run, 2 wait
  std::vector<GateId> grant(U);      // arbiter grant register (built below)
  for (size_t u = 0; u < U; ++u) grant[u] = b.reg("grant" + std::to_string(u));

  GateId unit0_run = kNullGate;

  for (size_t u = 0; u < U; ++u) {
    const std::string tag = std::to_string(u);
    const GateId start = b.input("start" + tag);
    const GateId cancel = b.input("cancel" + tag);
    const GateId chk_en = b.input("chk_en" + tag);
    const Word op_in = b.input_word("op" + tag, p.pipe_width);

    state[u] = b.reg_word("state" + tag, 2, 0);
    const GateId is_idle = b.eq_const(state[u], 0);
    const GateId is_run = b.eq_const(state[u], 1);
    const GateId is_wait = b.eq_const(state[u], 2);
    if (u == 0) unit0_run = is_run;

    // Opcode pipeline: advances while running; stage 0 samples the opcode.
    // Each stage runs the value through an ALU-ish mix (add + rotate-xor)
    // rather than a plain shift, giving the datapath a realistic gate/reg
    // ratio (the paper's processor module has ~22 gates per register).
    std::vector<Word> stages(p.pipe_depth);
    for (size_t d = 0; d < p.pipe_depth; ++d)
      stages[d] = b.reg_word("pipe" + tag + "_" + std::to_string(d), p.pipe_width, 0);
    b.set_next_word(stages[0], b.mux_word(is_run, stages[0], op_in));
    for (size_t d = 1; d < p.pipe_depth; ++d) {
      Word rotated(p.pipe_width);
      for (size_t i = 0; i < p.pipe_width; ++i)
        rotated[i] = stages[d][(i + 3) % p.pipe_width];
      const Word mixed = b.xor_word(b.add_word(stages[d - 1], rotated), stages[d - 1]);
      b.set_next_word(stages[d], b.mux_word(is_run, stages[d], mixed));
    }

    // Result-register clutter: mixed from pipeline taps through adders so
    // the datapath contributes real gate count and feeds back into control.
    Word results;
    const size_t chunks = (p.result_regs + p.pipe_width - 1) / p.pipe_width;
    std::vector<Word> result_words(chunks);
    for (size_t c = 0; c < chunks; ++c) {
      const size_t width = std::min(p.pipe_width, p.result_regs - c * p.pipe_width);
      result_words[c] =
          b.reg_word("res" + tag + "_" + std::to_string(c), width, 0);
      const Word& tap = stages[c % p.pipe_depth];
      Word tap_slice(result_words[c].size());
      for (size_t i = 0; i < tap_slice.size(); ++i) tap_slice[i] = tap[i % tap.size()];
      const Word& prev = result_words[c == 0 ? 0 : c - 1];
      Word prev_slice(result_words[c].size());
      for (size_t i = 0; i < prev_slice.size(); ++i)
        prev_slice[i] = prev[(i + 1) % prev.size()];
      const Word mixed =
          b.add_word(b.add_word(result_words[c], tap_slice), prev_slice);
      b.set_next_word(result_words[c], b.mux_word(is_run, result_words[c], mixed));
      for (GateId g : result_words[c]) results.push_back(g);
    }

    // Completion condition: cancel, or (when checking is enabled) the
    // parity of the last pipeline stage mixed with the result clutter —
    // this puts the whole datapath into the COI of the busy FSM.
    GateId parity = stages[p.pipe_depth - 1][0];
    for (size_t i = 1; i < p.pipe_width; ++i)
      parity = b.xor_(parity, stages[p.pipe_depth - 1][i]);
    for (size_t i = 0; i < results.size(); i += 7) parity = b.xor_(parity, results[i]);
    const GateId done = b.or_(cancel, b.and_(chk_en, parity));

    // FSM: idle --start--> run --done--> wait --grant--> idle.
    const Word next_idle = b.mux_word(start, b.constant_word(0, 2), b.constant_word(1, 2));
    const Word next_run = b.mux_word(done, b.constant_word(1, 2), b.constant_word(2, 2));
    const Word next_wait =
        b.mux_word(grant[u], b.constant_word(2, 2), b.constant_word(0, 2));
    Word next_state = b.mux_word(is_idle, state[u], next_idle);
    next_state = b.mux_word(is_run, next_state, next_run);
    next_state = b.mux_word(is_wait, next_state, next_wait);
    b.set_next_word(state[u], next_state);

    request[u] = is_wait;
  }

  // Rotating one-hot arbiter. ptr marks the highest-priority unit.
  Word ptr(U);
  for (size_t u = 0; u < U; ++u)
    ptr[u] = b.reg("ptr" + std::to_string(u), tri_of(u == 0));

  std::vector<GateId> grant_next(U);
  for (size_t g = 0; g < U; ++g) {
    std::vector<GateId> terms;
    for (size_t s = 0; s < U; ++s) {
      // Priority position s wins slot g iff no unit between s and g
      // (cyclically) requests.
      GateId term = b.and_(ptr[s], request[g]);
      for (size_t k = s; k % U != g % U; ++k) {
        term = b.and_(term, b.not_(request[k % U]));
        if (k > s + U) break;  // safety
      }
      terms.push_back(term);
    }
    grant_next[g] = b.or_n(terms);
  }
  for (size_t u = 0; u < U; ++u) b.set_next(grant[u], grant_next[u]);

  const GateId any_grant = b.or_n(grant_next);
  for (size_t u = 0; u < U; ++u) {
    // Rotate: priority moves just past the granted unit.
    const GateId rotated = grant_next[(u + U - 1) % U];
    b.set_next(ptr[u], b.mux(any_grant, ptr[u], rotated));
  }

  // mutex watchdog: two grants high at once.
  std::vector<GateId> pair_terms;
  for (size_t i = 0; i < U; ++i)
    for (size_t j = i + 1; j < U; ++j) pair_terms.push_back(b.and_(grant[i], grant[j]));
  const GateId clash = b.or_n(pair_terms);
  const GateId bad_mutex = b.reg("bad_mutex", Tri::F);
  b.set_next(bad_mutex, b.or_(bad_mutex, clash));

  // error_flag bug: unit 0's session counter arms a latch at a magic count;
  // an armed flush colliding with grant0 raises the flag (reachable, paper:
  // 30-cycle error trace).
  const GateId flush = b.input("flush");
  const Word session = b.reg_word("session", p.counter_bits, 0);
  b.set_next_word(session, b.mux_word(unit0_run, session, b.inc_word(session)));
  const uint64_t magic = (uint64_t{1} << p.counter_bits) - 8;
  const GateId armed = b.reg("armed", Tri::F);
  b.set_next(armed, b.or_(armed, b.eq_const(session, magic)));
  const GateId error_flag = b.reg("error_flag", Tri::F);
  b.set_next(error_flag,
             b.or_(error_flag, b.and_(armed, b.and_(flush, grant[0]))));

  b.output("bad_mutex", bad_mutex);
  b.output("error_flag", error_flag);

  ProcessorDesign d;
  d.netlist = b.take();
  d.bad_mutex = bad_mutex;
  d.error_flag = error_flag;
  return d;
}

}  // namespace rfn::designs
