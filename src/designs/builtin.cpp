#include "designs/builtin.hpp"

#include <utility>

#include "designs/fifo.hpp"
#include "designs/iu.hpp"
#include "designs/processor.hpp"
#include "designs/usb.hpp"

namespace rfn::designs {

const std::vector<std::string>& builtin_names() {
  static const std::vector<std::string> kNames = {"fifo", "processor", "iu",
                                                  "usb"};
  return kNames;
}

Netlist make_builtin(const std::string& name, bool* ok) {
  *ok = true;
  if (name == "fifo")
    return make_fifo({.addr_bits = 3, .data_bits = 2}).netlist;
  if (name == "processor") {
    ProcessorParams p;
    p.units = 4;
    p.pipe_depth = 4;
    p.pipe_width = 4;
    p.result_regs = 8;
    p.counter_bits = 4;
    ProcessorDesign d = make_processor(p);
    d.netlist.add_output("bad_mutex", d.bad_mutex);
    d.netlist.add_output("error_flag", d.error_flag);
    return std::move(d.netlist);
  }
  if (name == "iu") {
    IuDesign d = make_iu({});
    for (size_t s = 0; s < d.coverage_sets.size(); ++s)
      d.netlist.add_output("iu" + std::to_string(s), d.coverage_sets[s][0]);
    // The coverage registers are all reachable (VIOLATED as properties), so
    // also expose a provable safety monitor: the decode FSM never enters an
    // illegal state (dec in {6,7} <=> dec[2] & dec[1]).
    d.netlist.add_output(
        "bad_dec", d.netlist.add(GateType::And,
                                 {d.netlist.find("dec[2]"),
                                  d.netlist.find("dec[1]")}));
    return std::move(d.netlist);
  }
  if (name == "usb") {
    UsbDesign d = make_usb({});
    for (size_t i = 0; i < d.usb1.size(); ++i)
      d.netlist.add_output("usb1_" + std::to_string(i), d.usb1[i]);
    for (size_t i = 0; i < d.usb2.size(); ++i)
      d.netlist.add_output("usb2_" + std::to_string(i), d.usb2[i]);
    // Same: the line register never holds SE1 (line == 3), a provable
    // safety property next to the reachable coverage targets.
    d.netlist.add_output(
        "bad_se1", d.netlist.add(GateType::And,
                                 {d.netlist.find("line[0]"),
                                  d.netlist.find("line[1]")}));
    return std::move(d.netlist);
  }
  *ok = false;
  return Netlist{};
}

}  // namespace rfn::designs
