#pragma once
// USB-bus-controller-like design for unreachable-coverage-state analysis
// (Table 2 rows USB1 and USB2).
//
// A USB-flavoured protocol engine: differential line-state decoder, NRZI
// bit recovery with bit-stuffing counter, packet-engine FSM, PID/address
// registers, a frame counter that wraps below its natural range, and CRC16
// machinery as datapath clutter. Coverage sets follow the paper: USB1 has 6
// coverage signals, USB2 has 21.

#include <vector>

#include "netlist/netlist.hpp"

namespace rfn::designs {

struct UsbParams {
  size_t clutter_words = 16;
  size_t word_bits = 8;
};

struct UsbDesign {
  Netlist netlist;
  std::vector<GateId> usb1;  // 6 coverage registers
  std::vector<GateId> usb2;  // 21 coverage registers
};

UsbDesign make_usb(const UsbParams& p = {});

/// Paper-scale parameters.
UsbParams paper_scale_usb();

}  // namespace rfn::designs
