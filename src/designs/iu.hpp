#pragma once
// picoJava-Integer-Unit-like design for unreachable-coverage-state analysis
// (Table 2 rows IU1..IU5).
//
// A control-dominated pipeline: a one-hot stall controller, a binary decode
// FSM, pipeline valid bits and a register scoreboard, all cross-coupled and
// fed by a block of arithmetic "datapath clutter" registers that sits
// topologically close to the control (so the BFS baseline's
// closest-k-registers abstraction drags expensive arithmetic state in,
// while RFN's counterexample-driven refinement does not — the mechanism
// behind the paper's "BFS time is more unpredictable" observation).
//
// The five coverage sets each contain 10 registers drawn from the control
// state machines; their COIs are identical because the control is strongly
// connected (the paper remarks the same about its IU coverage sets).

#include <vector>

#include "netlist/netlist.hpp"

namespace rfn::designs {

struct IuParams {
  size_t stages = 6;          // pipeline depth (>= 6)
  size_t scoreboard_bits = 8; // architectural scoreboard width (>= 8)
  size_t clutter_words = 24;  // datapath clutter words
  size_t word_bits = 8;
};

struct IuDesign {
  Netlist netlist;
  /// coverage_sets[0..4] are IU1..IU5 (10 registers each).
  std::vector<std::vector<GateId>> coverage_sets;
};

IuDesign make_iu(const IuParams& p = {});

/// Paper-scale parameters (~2,500 registers in the coverage COI).
IuParams paper_scale_iu();

}  // namespace rfn::designs
