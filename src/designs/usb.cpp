#include "designs/usb.hpp"

#include "netlist/builder.hpp"
#include "util/log.hpp"

namespace rfn::designs {

UsbParams paper_scale_usb() {
  UsbParams p;
  p.clutter_words = 120;
  p.word_bits = 8;
  return p;
}

UsbDesign make_usb(const UsbParams& p) {
  NetBuilder b;

  const GateId dp = b.input("dp");
  const GateId dm = b.input("dm");
  const GateId sof_tick = b.input("sof_tick");
  const GateId chk_en = b.input("chk_en");

  // Clutter registers are declared up front: their parity feeds back into
  // the packet engine (below), putting the CRC datapath into the coverage
  // signals' COI.
  std::vector<Word> clutter(p.clutter_words);
  GateId parity = b.constant(false);
  for (size_t c = 0; c < p.clutter_words; ++c) {
    clutter[c] = b.reg_word("buf" + std::to_string(c), p.word_bits, 0);
    parity = b.xor_(parity, clutter[c][0]);
  }

  // Line-state decoder: J (10), K (01), SE0 (00); SE1 (11) is filtered, so
  // the encoded line register never holds 3.
  const Word line = b.reg_word("line", 2, 2);  // reset to J
  const GateId se1 = b.and_(dp, dm);
  Word line_in(2);
  line_in[0] = b.and_(dm, b.not_(dp));
  line_in[1] = b.and_(dp, b.not_(dm));
  b.set_next_word(line, b.mux_word(se1, line_in, line));

  const GateId is_j = b.and_(line[1], b.not_(line[0]));
  const GateId is_k = b.and_(line[0], b.not_(line[1]));
  const GateId is_se0 = b.nor_(line[0], line[1]);

  // NRZI decoding: a 0 line transition means bit 1 held, transition means 0.
  const GateId prev_k = b.reg("prev_k", Tri::F);
  b.set_next(prev_k, is_k);
  const GateId bit = b.xnor_(is_k, prev_k);

  // Bit-stuff counter: counts consecutive ones, forced to reset at 6 —
  // value 7 is unreachable.
  const Word stuff = b.reg_word("stuff", 3, 0);
  const GateId at6 = b.eq_const(stuff, 6);
  const Word stuff_next =
      b.mux_word(b.and_(bit, b.not_(at6)), b.constant_word(0, 3), b.inc_word(stuff));
  b.set_next_word(stuff, stuff_next);

  // Packet FSM (3 bits): IDLE(0) SYNC(1) PID(2) DATA(3) CRC(4) EOP(5);
  // 6 and 7 unused.
  const Word pkt = b.reg_word("pkt", 3, 0);
  auto pkt_is = [&](uint64_t v) { return b.eq_const(pkt, v); };
  const Word nibble_cnt = b.reg_word("nibble", 3, 0);
  const GateId nibble_done = b.eq_const(nibble_cnt, 7);
  Word pkt_next = b.mux_word(is_k, pkt, b.constant_word(1, 3));       // IDLE -k-> SYNC
  pkt_next = b.mux_word(pkt_is(1), pkt_next,
                        b.mux_word(is_j, b.constant_word(1, 3), b.constant_word(2, 3)));
  pkt_next = b.mux_word(pkt_is(2), pkt_next,
                        b.mux_word(nibble_done, b.constant_word(2, 3),
                                   b.constant_word(3, 3)));
  // Leaving DATA requires SE0, or a (checker-enabled) datapath parity hit —
  // the coupling that pulls the CRC clutter into every coverage COI.
  const GateId leave_data = b.or_(is_se0, b.and_(chk_en, parity));
  pkt_next = b.mux_word(pkt_is(3), pkt_next,
                        b.mux_word(leave_data, b.constant_word(3, 3), b.constant_word(4, 3)));
  pkt_next = b.mux_word(pkt_is(4), pkt_next, b.constant_word(5, 3));
  pkt_next = b.mux_word(pkt_is(5), pkt_next,
                        b.mux_word(is_j, b.constant_word(5, 3), b.constant_word(0, 3)));
  // In IDLE, pkt_is(0): covered by the first line (default branch).
  b.set_next_word(pkt, b.mux_word(pkt_is(0), pkt_next,
                                  b.mux_word(is_k, pkt, b.constant_word(1, 3))));

  b.set_next_word(nibble_cnt, b.mux_word(pkt_is(2), b.constant_word(0, 3),
                                         b.inc_word(nibble_cnt)));

  // PID register: shifts bits in during the PID state.
  const Word pid = b.reg_word("pid", 4, 0);
  Word pid_shift{bit, pid[0], pid[1], pid[2]};
  b.set_next_word(pid, b.mux_word(pkt_is(2), pid, pid_shift));

  // Address register captured at end of PID phase.
  const Word addr = b.reg_word("addr", 7, 0);
  Word addr_shift{bit, addr[0], addr[1], addr[2], addr[3], addr[4], addr[5]};
  b.set_next_word(addr, b.mux_word(pkt_is(3), addr, addr_shift));

  // Frame counter: increments on SOF in IDLE, wraps at 1280 — frame values
  // >= 1280 are unreachable coverage states.
  const Word frame = b.reg_word("frame", 11, 0);
  const GateId wrap = b.eq_const(frame, 1279);
  const Word frame_next = b.mux_word(wrap, b.inc_word(frame), b.constant_word(0, 11));
  b.set_next_word(frame,
                  b.mux_word(b.and_(sof_tick, pkt_is(0)), frame, frame_next));

  // CRC16 LFSR over recovered bits during DATA.
  const Word crc = b.reg_word("crc", 16, 0xFFFF);
  const GateId fb = b.xor_(crc[15], bit);
  Word crc_next(16);
  crc_next[0] = fb;
  for (size_t i = 1; i < 16; ++i) {
    crc_next[i] = crc[i - 1];
    if (i == 2 || i == 15) crc_next[i] = b.xor_(crc_next[i], fb);
  }
  b.set_next_word(crc, b.mux_word(pkt_is(3), crc, crc_next));

  // Datapath clutter updates: mixed from the CRC register while receiving.
  for (size_t c = 0; c < p.clutter_words; ++c) {
    Word src(p.word_bits);
    for (size_t i = 0; i < p.word_bits; ++i)
      src[i] = c == 0 ? crc[i % 16] : clutter[c - 1][i];
    const Word mixed = b.add_word(clutter[c], src);
    b.set_next_word(clutter[c], b.mux_word(pkt_is(3), clutter[c], mixed));
  }
  // Feed parity back into an error latch inside the packet engine COI.
  const GateId err = b.reg("crc_err", Tri::F);
  b.set_next(err, b.or_(b.and_(b.and_(chk_en, parity), pkt_is(4)),
                        b.and_(err, b.not_(pkt_is(0)))));
  b.output("crc_err", err);

  UsbDesign d;
  d.usb1 = {pkt[0], pkt[1], pkt[2], line[0], line[1], err};
  d.usb2 = {frame[0], frame[1], frame[2], frame[3], frame[4], frame[5], frame[6],
            frame[7], frame[8], frame[9], frame[10], pkt[0], pkt[1], pkt[2],
            stuff[0], stuff[1], stuff[2], pid[0], pid[1], pid[2], pid[3]};
  d.netlist = b.take();
  return d;
}

}  // namespace rfn::designs
