#include "bdd/bdd.hpp"

#include <algorithm>

#include "util/metrics.hpp"

namespace rfn {

void publish_bdd_metrics(const BddStats& s) {
  MetricsRegistry& m = MetricsRegistry::global();
  m.counter("bdd.managers").add(1);
  m.counter("bdd.gc_runs").add(s.gc_runs);
  m.counter("bdd.reorderings").add(s.reorderings);
  m.counter("bdd.cache_lookups").add(s.cache_lookups);
  m.counter("bdd.cache_hits").add(s.cache_hits);
  m.gauge("bdd.peak_live_nodes").record_max(static_cast<int64_t>(s.peak_live_nodes));
  // Arena bytes: level = this manager's footprint, max = the largest any
  // manager reached this run (rfn-prof-v1's bdd.peak_bytes).
  m.gauge("bdd.heap_bytes").set(static_cast<int64_t>(s.heap_bytes));
  m.gauge("bdd.heap_bytes").record_max(static_cast<int64_t>(s.heap_peak_bytes));
}

// ---------------------------------------------------------------------------
// Bdd handle
// ---------------------------------------------------------------------------

Bdd::Bdd(BddMgr* mgr, uint32_t id) : mgr_(mgr), id_(id) {}

Bdd::Bdd(const Bdd& other) : mgr_(other.mgr_), id_(other.id_) {
  if (mgr_) mgr_->inc_rc(id_);
}

Bdd::Bdd(Bdd&& other) noexcept : mgr_(other.mgr_), id_(other.id_) {
  other.mgr_ = nullptr;
  other.id_ = 0;
}

Bdd& Bdd::operator=(const Bdd& other) {
  if (this == &other) return *this;
  if (other.mgr_) other.mgr_->inc_rc(other.id_);
  if (mgr_) mgr_->dec_rc(id_);
  mgr_ = other.mgr_;
  id_ = other.id_;
  return *this;
}

Bdd& Bdd::operator=(Bdd&& other) noexcept {
  if (this == &other) return *this;
  if (mgr_) mgr_->dec_rc(id_);
  mgr_ = other.mgr_;
  id_ = other.id_;
  other.mgr_ = nullptr;
  other.id_ = 0;
  return *this;
}

Bdd::~Bdd() {
  if (mgr_) mgr_->dec_rc(id_);
}

bool Bdd::is_false() const { return mgr_ != nullptr && id_ == 0; }
bool Bdd::is_true() const { return mgr_ != nullptr && id_ == 1; }

Bdd Bdd::operator&(const Bdd& o) const {
  if (is_null() || o.is_null()) return Bdd();
  return mgr_->apply_and(*this, o);
}
Bdd Bdd::operator|(const Bdd& o) const {
  if (is_null() || o.is_null()) return Bdd();
  return mgr_->apply_or(*this, o);
}
Bdd Bdd::operator^(const Bdd& o) const {
  if (is_null() || o.is_null()) return Bdd();
  return mgr_->apply_xor(*this, o);
}
Bdd Bdd::operator!() const {
  if (is_null()) return Bdd();
  return mgr_->apply_not(*this);
}

bool Bdd::implies(const Bdd& o) const {
  const Bdd diff = *this & !o;
  RFN_CHECK(!diff.is_null(), "implies: null operand or budget exceeded");
  return diff.is_false();
}

// ---------------------------------------------------------------------------
// Manager: construction, nodes, unique table
// ---------------------------------------------------------------------------

BddMgr::BddMgr(uint32_t initial_vars) {
  nodes_.reserve(1u << 16);
  // Terminals occupy ids 0 (false) and 1 (true).
  nodes_.push_back({kTermVar, kNil, kNil, kNil, kMaxRc});
  nodes_.push_back({kTermVar, kNil, kNil, kNil, kMaxRc});
  stats_.live_nodes = 0;  // terminals not counted
  cache_.resize(1u << 16);
  cache_mask_ = cache_.size() - 1;
  heap_track(0, nodes_.capacity() * sizeof(Node) +
                    cache_.capacity() * sizeof(CacheEntry));
  for (uint32_t i = 0; i < initial_vars; ++i) new_var();
}

BddMgr::~BddMgr() = default;

BddVar BddMgr::new_var() {
  const BddVar v = static_cast<BddVar>(perm_.size());
  perm_.push_back(v);  // new variable goes to the bottom level
  invperm_.push_back(v);
  subtables_.emplace_back();
  subtables_.back().buckets.assign(16, kNil);
  heap_track(0, subtables_.back().buckets.capacity() * sizeof(uint32_t));
  stats_.num_vars = perm_.size();
  return v;
}

void BddMgr::inc_rc(uint32_t node) {
  Node& n = nodes_[node];
  if (n.rc >= kMaxRc) return;
  if (n.rc == 0 && n.var != kTermVar && dead_estimate_ > 0) --dead_estimate_;
  ++n.rc;
}

void BddMgr::dec_rc(uint32_t node) {
  Node& n = nodes_[node];
  if (n.rc >= kMaxRc) return;
  RFN_CHECK(n.rc > 0, "refcount underflow on node %u", node);
  --n.rc;
  if (n.rc == 0) ++dead_estimate_;
}

size_t BddMgr::hash_pair(uint32_t lo, uint32_t hi, size_t mask) {
  uint64_t h = (static_cast<uint64_t>(lo) << 32) | hi;
  h *= 0x9e3779b97f4a7c15ULL;
  h ^= h >> 29;
  return static_cast<size_t>(h) & mask;
}

void BddMgr::subtable_insert(Subtable& st, uint32_t node) {
  const size_t b = hash_pair(nodes_[node].lo, nodes_[node].hi, st.buckets.size() - 1);
  nodes_[node].next = st.buckets[b];
  st.buckets[b] = node;
  ++st.count;
}

void BddMgr::subtable_remove(Subtable& st, uint32_t node) {
  const size_t b = hash_pair(nodes_[node].lo, nodes_[node].hi, st.buckets.size() - 1);
  uint32_t* link = &st.buckets[b];
  while (*link != kNil) {
    if (*link == node) {
      *link = nodes_[node].next;
      --st.count;
      return;
    }
    link = &nodes_[*link].next;
  }
  fatal("subtable_remove: node not found");
}

void BddMgr::maybe_grow(Subtable& st) {
  if (st.count < st.buckets.size() * 2) return;
  std::vector<uint32_t> old = std::move(st.buckets);
  st.buckets.assign(old.size() * 4, kNil);
  heap_track(old.capacity() * sizeof(uint32_t),
             st.buckets.capacity() * sizeof(uint32_t));
  const size_t mask = st.buckets.size() - 1;
  for (uint32_t head : old) {
    while (head != kNil) {
      const uint32_t next = nodes_[head].next;
      const size_t b = hash_pair(nodes_[head].lo, nodes_[head].hi, mask);
      nodes_[head].next = st.buckets[b];
      st.buckets[b] = head;
      head = next;
    }
  }
}

uint32_t BddMgr::find_or_add(BddVar v, uint32_t lo, uint32_t hi) {
  if (lo == hi) return lo;
  Subtable& st = subtables_[v];
  const size_t b = hash_pair(lo, hi, st.buckets.size() - 1);
  for (uint32_t node = st.buckets[b]; node != kNil; node = nodes_[node].next) {
    const Node& n = nodes_[node];
    if (n.lo == lo && n.hi == hi) return node;
  }
  // Allocate (from free list or fresh).
  if (node_budget_ != 0 && !in_reorder_ && stats_.live_nodes >= node_budget_)
    throw BudgetExceeded{};
  uint32_t id;
  if (free_head_ != kNil) {
    id = free_head_;
    free_head_ = nodes_[id].next;
    --free_count_;
  } else {
    id = static_cast<uint32_t>(nodes_.size());
    const size_t before = nodes_.capacity();
    nodes_.push_back({});
    heap_track(before * sizeof(Node), nodes_.capacity() * sizeof(Node));
  }
  Node& n = nodes_[id];
  n.var = v;
  n.lo = lo;
  n.hi = hi;
  n.rc = 0;
  inc_rc(lo);
  inc_rc(hi);
  ++dead_estimate_;  // born dead until someone references it
  ++stats_.live_nodes;
  if (stats_.live_nodes > stats_.peak_live_nodes)
    stats_.peak_live_nodes = stats_.live_nodes;
  publish_live_nodes();
  subtable_insert(st, id);
  maybe_grow(st);
  return id;
}

void BddMgr::free_dead_node(uint32_t root) {
  std::vector<uint32_t> work{root};
  while (!work.empty()) {
    const uint32_t id = work.back();
    work.pop_back();
    Node& n = nodes_[id];
    if (n.rc != 0 || n.var == kTermVar || n.var == kInvalidVar) continue;
    subtable_remove(subtables_[n.var], id);
    const uint32_t lo = n.lo, hi = n.hi;
    n.var = kInvalidVar;
    n.next = free_head_;
    free_head_ = id;
    ++free_count_;
    --stats_.live_nodes;
    if (dead_estimate_ > 0) --dead_estimate_;
    for (uint32_t child : {lo, hi}) {
      Node& c = nodes_[child];
      if (c.var == kTermVar) continue;
      if (c.rc < kMaxRc) {
        RFN_CHECK(c.rc > 0, "child refcount underflow");
        --c.rc;
        if (c.rc == 0) {
          ++dead_estimate_;
          work.push_back(child);
        }
      }
    }
  }
}

void BddMgr::garbage_collect() {
  cache_clear();
  for (uint32_t id = 2; id < nodes_.size(); ++id) {
    if (nodes_[id].var != kInvalidVar && nodes_[id].var != kTermVar &&
        nodes_[id].rc == 0)
      free_dead_node(id);
  }
  dead_estimate_ = 0;
  ++stats_.gc_runs;
  publish_live_nodes();
}

void BddMgr::housekeeping() {
  if (in_reorder_) return;
  if (dead_estimate_ > 4096 && dead_estimate_ * 4 > stats_.live_nodes)
    garbage_collect();
  if (auto_reorder_ && stats_.live_nodes > reorder_threshold_) {
    reorder_sift();
    // Back off so we do not thrash: next reorder at 2x the post-sift size.
    reorder_threshold_ = std::max(reorder_threshold_, stats_.live_nodes * 2);
  }
}

Bdd BddMgr::make(uint32_t id) {
  inc_rc(id);
  return Bdd(this, id);
}

// ---------------------------------------------------------------------------
// Computed table
// ---------------------------------------------------------------------------

uint32_t BddMgr::cache_lookup(Op op, uint32_t a, uint32_t b, uint32_t c) {
  ++stats_.cache_lookups;
  if (deadline_ && !in_reorder_ && (++deadline_tick_ & 0x3FFF) == 0 &&
      deadline_->expired())
    throw BudgetExceeded{};
  uint64_t h = (static_cast<uint64_t>(a) * 0x100000001b3ULL) ^
               (static_cast<uint64_t>(b) << 21) ^ (static_cast<uint64_t>(c) << 42) ^
               static_cast<uint64_t>(op);
  h *= 0x9e3779b97f4a7c15ULL;
  const CacheEntry& e = cache_[(h >> 32) & cache_mask_];
  if (e.result != kNil && e.op == op && e.a == a && e.b == b && e.c == c) {
    ++stats_.cache_hits;
    return e.result;
  }
  return kNil;
}

void BddMgr::cache_insert(Op op, uint32_t a, uint32_t b, uint32_t c, uint32_t result) {
  uint64_t h = (static_cast<uint64_t>(a) * 0x100000001b3ULL) ^
               (static_cast<uint64_t>(b) << 21) ^ (static_cast<uint64_t>(c) << 42) ^
               static_cast<uint64_t>(op);
  h *= 0x9e3779b97f4a7c15ULL;
  cache_[(h >> 32) & cache_mask_] = {a, b, c, result, op};
}

void BddMgr::cache_clear() {
  for (CacheEntry& e : cache_) e.result = kNil;
}

// ---------------------------------------------------------------------------
// Cofactors and core recursions
// ---------------------------------------------------------------------------

void BddMgr::cofactors(uint32_t f, uint32_t lvl, uint32_t& f0, uint32_t& f1) const {
  if (level(f) == lvl) {
    f0 = nodes_[f].lo;
    f1 = nodes_[f].hi;
  } else {
    f0 = f1 = f;
  }
}

uint32_t BddMgr::and_rec(uint32_t f, uint32_t g) {
  if (f == 0 || g == 0) return 0;
  if (f == 1) return g;
  if (g == 1) return f;
  if (f == g) return f;
  if (f > g) std::swap(f, g);
  const uint32_t cached = cache_lookup(Op::And, f, g, kNil);
  if (cached != kNil) return cached;
  const uint32_t lvl = std::min(level(f), level(g));
  uint32_t f0, f1, g0, g1;
  cofactors(f, lvl, f0, f1);
  cofactors(g, lvl, g0, g1);
  const uint32_t r0 = and_rec(f0, g0);
  const uint32_t r1 = and_rec(f1, g1);
  const uint32_t r = find_or_add(invperm_[lvl], r0, r1);
  cache_insert(Op::And, f, g, kNil, r);
  return r;
}

uint32_t BddMgr::xor_rec(uint32_t f, uint32_t g) {
  if (f == g) return 0;
  if (f == 0) return g;
  if (g == 0) return f;
  if (f == 1) return not_rec(g);
  if (g == 1) return not_rec(f);
  if (f > g) std::swap(f, g);
  const uint32_t cached = cache_lookup(Op::Xor, f, g, kNil);
  if (cached != kNil) return cached;
  const uint32_t lvl = std::min(level(f), level(g));
  uint32_t f0, f1, g0, g1;
  cofactors(f, lvl, f0, f1);
  cofactors(g, lvl, g0, g1);
  const uint32_t r = find_or_add(invperm_[lvl], xor_rec(f0, g0), xor_rec(f1, g1));
  cache_insert(Op::Xor, f, g, kNil, r);
  return r;
}

uint32_t BddMgr::not_rec(uint32_t f) {
  if (f == 0) return 1;
  if (f == 1) return 0;
  const uint32_t cached = cache_lookup(Op::Not, f, kNil, kNil);
  if (cached != kNil) return cached;
  const uint32_t r =
      find_or_add(nodes_[f].var, not_rec(nodes_[f].lo), not_rec(nodes_[f].hi));
  cache_insert(Op::Not, f, kNil, kNil, r);
  // Negation is an involution; prime the reverse direction too.
  cache_insert(Op::Not, r, kNil, kNil, f);
  return r;
}

uint32_t BddMgr::ite_rec(uint32_t f, uint32_t g, uint32_t h) {
  if (f == 1) return g;
  if (f == 0) return h;
  if (g == h) return g;
  if (g == 1 && h == 0) return f;
  if (g == 0 && h == 1) return not_rec(f);
  if (f == g) return ite_rec(f, 1, h);   // f ? f : h == f | h
  if (f == h) return ite_rec(f, g, 0);   // f ? g : f == f & g
  const uint32_t cached = cache_lookup(Op::Ite, f, g, h);
  if (cached != kNil) return cached;
  const uint32_t lvl = std::min(level(f), std::min(level(g), level(h)));
  uint32_t f0, f1, g0, g1, h0, h1;
  cofactors(f, lvl, f0, f1);
  cofactors(g, lvl, g0, g1);
  cofactors(h, lvl, h0, h1);
  const uint32_t r0 = ite_rec(f0, g0, h0);
  const uint32_t r1 = ite_rec(f1, g1, h1);
  const uint32_t r = find_or_add(invperm_[lvl], r0, r1);
  cache_insert(Op::Ite, f, g, h, r);
  return r;
}

// ---------------------------------------------------------------------------
// Public operations
// ---------------------------------------------------------------------------

namespace {
void check_same_mgr(const BddMgr* mgr, const Bdd& x) {
  RFN_CHECK(!x.is_null() && x.mgr() == mgr, "operand from wrong/null manager");
}
}  // namespace

Bdd BddMgr::literal(BddVar v, bool positive) {
  RFN_CHECK(v < num_vars(), "literal on unknown var %u", v);
  return run_guarded([&] { return positive ? find_or_add(v, 0, 1) : find_or_add(v, 1, 0); });
}

Bdd BddMgr::apply_and(const Bdd& f, const Bdd& g) {
  if (f.is_null() || g.is_null()) return Bdd();
  check_same_mgr(this, f);
  check_same_mgr(this, g);
  return run_guarded([&] { return and_rec(f.id(), g.id()); });
}

Bdd BddMgr::apply_or(const Bdd& f, const Bdd& g) {
  if (f.is_null() || g.is_null()) return Bdd();
  check_same_mgr(this, f);
  check_same_mgr(this, g);
  // f | g == ite(f, 1, g).
  return run_guarded([&] { return ite_rec(f.id(), 1, g.id()); });
}

Bdd BddMgr::apply_xor(const Bdd& f, const Bdd& g) {
  if (f.is_null() || g.is_null()) return Bdd();
  check_same_mgr(this, f);
  check_same_mgr(this, g);
  return run_guarded([&] { return xor_rec(f.id(), g.id()); });
}

Bdd BddMgr::apply_not(const Bdd& f) {
  if (f.is_null()) return Bdd();
  check_same_mgr(this, f);
  return run_guarded([&] { return not_rec(f.id()); });
}

Bdd BddMgr::ite(const Bdd& f, const Bdd& g, const Bdd& h) {
  if (f.is_null() || g.is_null() || h.is_null()) return Bdd();
  check_same_mgr(this, f);
  check_same_mgr(this, g);
  check_same_mgr(this, h);
  return run_guarded([&] { return ite_rec(f.id(), g.id(), h.id()); });
}

Bdd BddMgr::cofactor(const Bdd& f, BddVar v, bool value) {
  if (f.is_null()) return Bdd();
  check_same_mgr(this, f);
  return run_guarded([&] {
    std::vector<uint32_t> memo(0);
    return cofactor_rec(f.id(), v, value, memo);
  });
}

uint32_t BddMgr::cofactor_rec(uint32_t f, BddVar v, bool value,
                              std::vector<uint32_t>& memo) {
  if (f < 2) return f;
  if (level(f) > perm_[v]) return f;  // f entirely below v
  if (nodes_[f].var == v) return value ? nodes_[f].hi : nodes_[f].lo;
  if (memo.empty()) memo.assign(nodes_.size(), kNil);
  if (memo[f] != kNil) return memo[f];
  const uint32_t r = find_or_add(nodes_[f].var, cofactor_rec(nodes_[f].lo, v, value, memo),
                                 cofactor_rec(nodes_[f].hi, v, value, memo));
  memo[f] = r;
  return r;
}

void BddMgr::check_integrity() const {
  size_t live = 0;
  for (uint32_t id = 2; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    if (n.var == kInvalidVar) continue;
    ++live;
    RFN_CHECK(n.var < num_vars(), "node %u has bad var", id);
    RFN_CHECK(n.lo != n.hi, "node %u is redundant", id);
    for (uint32_t child : {n.lo, n.hi}) {
      const Node& c = nodes_[child];
      RFN_CHECK(c.var != kInvalidVar, "node %u points at freed child %u", id, child);
      if (c.var != kTermVar)
        RFN_CHECK(perm_[c.var] > perm_[n.var], "order violation at node %u", id);
    }
    // The node must be findable in its subtable.
    const Subtable& st = subtables_[n.var];
    const size_t b = hash_pair(n.lo, n.hi, st.buckets.size() - 1);
    bool found = false;
    for (uint32_t cur = st.buckets[b]; cur != kNil; cur = nodes_[cur].next)
      if (cur == id) {
        found = true;
        break;
      }
    RFN_CHECK(found, "node %u missing from subtable", id);
  }
  RFN_CHECK(live == stats_.live_nodes, "live count drift: %zu vs %zu", live,
            stats_.live_nodes);
  // Refcount cross-check: rc(node) >= number of internal parents.
  std::vector<uint32_t> parents(nodes_.size(), 0);
  for (uint32_t id = 2; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    if (n.var == kInvalidVar || n.var == kTermVar) continue;
    if (n.lo >= 2) ++parents[n.lo];
    if (n.hi >= 2) ++parents[n.hi];
  }
  for (uint32_t id = 2; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    if (n.var == kInvalidVar || n.var == kTermVar || n.rc >= kMaxRc) continue;
    RFN_CHECK(n.rc >= parents[id], "node %u rc %u < %u internal parents", id, n.rc,
              parents[id]);
  }
}

std::string lits_to_string(const std::vector<BddLit>& lits) {
  std::string out;
  for (size_t i = 0; i < lits.size(); ++i) {
    if (i) out += " & ";
    if (!lits[i].positive) out += "!";
    out += "x" + std::to_string(lits[i].var);
  }
  return out.empty() ? "true" : out;
}

}  // namespace rfn
