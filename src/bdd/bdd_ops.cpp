#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "bdd/bdd.hpp"

// Quantification, substitution, and query operations of the BDD manager.
// Split from bdd.cpp to keep the node-table core readable.

namespace rfn {

// ---------------------------------------------------------------------------
// Quantification
// ---------------------------------------------------------------------------

namespace {
// Quantifier sets are passed to the recursions as positive cubes so the
// cache can key on a node id.
}  // namespace

uint32_t BddMgr::exists_rec(uint32_t f, uint32_t cube) {
  if (f < 2) return f;
  // Drop quantified variables above f's top variable: they are not in f's
  // support, so quantifying them is the identity.
  while (cube != 1 && level(cube) < level(f)) cube = nodes_[cube].hi;
  if (cube == 1) return f;
  const uint32_t cached = cache_lookup(Op::Exists, f, cube, kNil);
  if (cached != kNil) return cached;
  const Node& n = nodes_[f];
  uint32_t r;
  if (level(f) == level(cube)) {
    const uint32_t r0 = exists_rec(n.lo, nodes_[cube].hi);
    // Short-circuit: if the 0-branch is already true, so is the disjunction.
    r = r0 == 1 ? 1u : ite_rec(r0, 1, exists_rec(n.hi, nodes_[cube].hi));
  } else {
    r = find_or_add(n.var, exists_rec(n.lo, cube), exists_rec(n.hi, cube));
  }
  cache_insert(Op::Exists, f, cube, kNil, r);
  return r;
}

uint32_t BddMgr::and_exists_rec(uint32_t f, uint32_t g, uint32_t cube) {
  if (f == 0 || g == 0) return 0;
  if (f == 1 && g == 1) return 1;
  if (f > g) std::swap(f, g);
  if (f == 1) return exists_rec(g, cube);
  if (f == g) return exists_rec(f, cube);
  const uint32_t top = std::min(level(f), level(g));
  while (cube != 1 && level(cube) < top) cube = nodes_[cube].hi;
  if (cube == 1) return and_rec(f, g);
  const uint32_t cached = cache_lookup(Op::AndExists, f, g, cube);
  if (cached != kNil) return cached;
  uint32_t f0, f1, g0, g1;
  cofactors(f, top, f0, f1);
  cofactors(g, top, g0, g1);
  uint32_t r;
  if (level(cube) == top) {
    const uint32_t r0 = and_exists_rec(f0, g0, nodes_[cube].hi);
    r = r0 == 1 ? 1u : ite_rec(r0, 1, and_exists_rec(f1, g1, nodes_[cube].hi));
  } else {
    r = find_or_add(invperm_[top], and_exists_rec(f0, g0, cube),
                    and_exists_rec(f1, g1, cube));
  }
  cache_insert(Op::AndExists, f, g, cube, r);
  return r;
}

Bdd BddMgr::exists(const Bdd& f, const std::vector<BddVar>& vars) {
  if (f.is_null()) return Bdd();
  RFN_CHECK(f.mgr() == this, "exists: bad operand");
  std::vector<BddLit> lits;
  lits.reserve(vars.size());
  for (BddVar v : vars) lits.push_back({v, true});
  const Bdd c = cube(lits);
  if (c.is_null()) return Bdd();
  return run_guarded([&] { return exists_rec(f.id(), c.id()); });
}

Bdd BddMgr::forall(const Bdd& f, const std::vector<BddVar>& vars) {
  // forall v. f == !(exists v. !f)
  return apply_not(exists(apply_not(f), vars));
}

Bdd BddMgr::and_exists(const Bdd& f, const Bdd& g, const std::vector<BddVar>& vars) {
  if (f.is_null() || g.is_null()) return Bdd();
  RFN_CHECK(f.mgr() == this && g.mgr() == this, "and_exists: bad operand");
  std::vector<BddLit> lits;
  lits.reserve(vars.size());
  for (BddVar v : vars) lits.push_back({v, true});
  const Bdd c = cube(lits);
  if (c.is_null()) return Bdd();
  return run_guarded([&] { return and_exists_rec(f.id(), g.id(), c.id()); });
}

// ---------------------------------------------------------------------------
// Substitution
// ---------------------------------------------------------------------------

Bdd BddMgr::rename(const Bdd& f, const std::vector<BddVar>& map) {
  if (f.is_null()) return Bdd();
  RFN_CHECK(f.mgr() == this, "rename: bad operand");
  RFN_CHECK(map.size() >= num_vars(), "rename map too short");
  housekeeping();
  // Bottom-up rebuild through ITE so arbitrary (order-violating) maps are
  // handled. Memo is per-call: the map is not part of the global cache key.
  std::unordered_map<uint32_t, uint32_t> memo;
  // Keep every intermediate alive via handles: ite_rec results are
  // unreferenced, and although no GC runs during this loop, the memo may be
  // long-lived across many ite_rec calls which may allocate heavily.
  std::vector<Bdd> holder;
  auto rec = [&](auto&& self, uint32_t node) -> uint32_t {
    if (node < 2) return node;
    const auto it = memo.find(node);
    if (it != memo.end()) return it->second;
    const Node n = nodes_[node];  // copy: nodes_ may reallocate
    const uint32_t lo = self(self, n.lo);
    const uint32_t hi = self(self, n.hi);
    const uint32_t v = find_or_add(map[n.var], 0, 1);
    const uint32_t r = ite_rec(v, hi, lo);
    memo.emplace(node, r);
    holder.push_back(make(r));
    return r;
  };
  try {
    return make(rec(rec, f.id()));
  } catch (const BudgetExceeded&) {
    holder.clear();
    memo.clear();
    garbage_collect();
    return Bdd();
  }
}

// ---------------------------------------------------------------------------
// Cube construction and queries
// ---------------------------------------------------------------------------

Bdd BddMgr::cube(const std::vector<BddLit>& lits) {
  return run_guarded([&] {
    // Sorting MUST happen inside the guarded region: run_guarded's
    // housekeeping may reorder variables, and the bottom-up chain below is
    // only canonical when built in the *current* level order.
    std::vector<BddLit> sorted = lits;
    std::sort(sorted.begin(), sorted.end(), [&](const BddLit& a, const BddLit& b) {
      return perm_[a.var] < perm_[b.var];
    });
    for (size_t i = 1; i < sorted.size(); ++i)
      RFN_CHECK(sorted[i - 1].var != sorted[i].var, "duplicate var %u in cube",
                sorted[i].var);
    uint32_t acc = 1;
    for (auto it = sorted.rbegin(); it != sorted.rend(); ++it)
      acc = it->positive ? find_or_add(it->var, 0, acc) : find_or_add(it->var, acc, 0);
    return acc;
  });
}

std::vector<BddVar> BddMgr::support(const Bdd& f) {
  RFN_CHECK(!f.is_null() && f.mgr() == this, "support: bad operand");
  std::vector<BddVar> vars;
  std::vector<uint32_t> stack{f.id()};
  std::unordered_map<uint32_t, bool> seen;
  std::vector<bool> in_support(num_vars(), false);
  while (!stack.empty()) {
    const uint32_t id = stack.back();
    stack.pop_back();
    if (id < 2 || seen[id]) continue;
    seen[id] = true;
    in_support[nodes_[id].var] = true;
    stack.push_back(nodes_[id].lo);
    stack.push_back(nodes_[id].hi);
  }
  for (BddVar v = 0; v < num_vars(); ++v)
    if (in_support[v]) vars.push_back(v);
  return vars;
}

double BddMgr::sat_count(const Bdd& f, uint32_t nvars) {
  RFN_CHECK(!f.is_null() && f.mgr() == this, "sat_count: bad operand");
  // count(node) = fraction-weighted model count: each skipped level between
  // a node and its child doubles the count. Terminals sit at virtual level
  // `nvars`.
  std::unordered_map<uint32_t, double> memo;
  auto lvl_of = [&](uint32_t node) -> double {
    return node < 2 ? static_cast<double>(nvars) : static_cast<double>(level(node));
  };
  auto rec = [&](auto&& self, uint32_t node) -> double {
    if (node == 0) return 0.0;
    if (node == 1) return 1.0;
    const auto it = memo.find(node);
    if (it != memo.end()) return it->second;
    const Node& n = nodes_[node];
    const double r = self(self, n.lo) * std::exp2(lvl_of(n.lo) - lvl_of(node) - 1) +
                     self(self, n.hi) * std::exp2(lvl_of(n.hi) - lvl_of(node) - 1);
    memo.emplace(node, r);
    return r;
  };
  return rec(rec, f.id()) * std::exp2(lvl_of(f.id()));
}

std::vector<BddLit> BddMgr::any_cube(const Bdd& f) {
  RFN_CHECK(!f.is_null() && f.mgr() == this && !f.is_false(), "any_cube: bad operand");
  std::vector<BddLit> lits;
  uint32_t node = f.id();
  while (node >= 2) {
    const Node& n = nodes_[node];
    if (n.lo != 0) {
      lits.push_back({n.var, false});
      node = n.lo;
    } else {
      lits.push_back({n.var, true});
      node = n.hi;
    }
  }
  return lits;
}

std::vector<BddLit> BddMgr::shortest_cube(const Bdd& f) {
  RFN_CHECK(!f.is_null() && f.mgr() == this && !f.is_false(),
            "shortest_cube: bad operand");
  // DP: fewest literals on any path from `node` to the 1-terminal. Variables
  // skipped along an edge cost nothing — a BDD path is an implicant, so the
  // cheapest path is exactly the paper's "fattest cube".
  std::unordered_map<uint32_t, uint32_t> cost;
  constexpr uint32_t kInf = 0x3FFFFFFF;
  auto rec = [&](auto&& self, uint32_t node) -> uint32_t {
    if (node == 0) return kInf;
    if (node == 1) return 0;
    const auto it = cost.find(node);
    if (it != cost.end()) return it->second;
    const Node& n = nodes_[node];
    const uint32_t c = std::min(self(self, n.lo), self(self, n.hi)) + 1;
    cost.emplace(node, c);
    return c;
  };
  rec(rec, f.id());
  std::vector<BddLit> lits;
  uint32_t node = f.id();
  while (node >= 2) {
    const Node& n = nodes_[node];
    const uint32_t lo_cost = n.lo == 1 ? 0 : (n.lo == 0 ? kInf : cost.at(n.lo));
    const uint32_t hi_cost = n.hi == 1 ? 0 : (n.hi == 0 ? kInf : cost.at(n.hi));
    if (lo_cost <= hi_cost) {
      lits.push_back({n.var, false});
      node = n.lo;
    } else {
      lits.push_back({n.var, true});
      node = n.hi;
    }
  }
  // The shortest path is not necessarily a prime implicant: a variable the
  // BDD tests near the root may be droppable (e.g. (x0 x1 x2) | x5 — every
  // path assigns x0, yet {x5} alone implies f). Expand to a prime implicant
  // by greedily dropping literals while the cube still implies f.
  for (size_t i = 0; i < lits.size();) {
    std::vector<BddLit> without;
    without.reserve(lits.size() - 1);
    for (size_t j = 0; j < lits.size(); ++j)
      if (j != i) without.push_back(lits[j]);
    const Bdd without_bdd = cube(without);
    if (without_bdd.is_null()) break;  // budget exhausted: keep current cube
    if (without_bdd.implies(f)) {
      lits = std::move(without);  // dropped; retry same index
    } else {
      ++i;
    }
  }
  return lits;
}

std::vector<std::vector<BddLit>> BddMgr::first_cubes(const Bdd& f, size_t limit) {
  RFN_CHECK(!f.is_null() && f.mgr() == this, "first_cubes: bad operand");
  std::vector<std::vector<BddLit>> cubes;
  if (f.is_false() || limit == 0) return cubes;
  // DFS over BDD paths ending at the 1-terminal.
  std::vector<BddLit> path;
  auto rec = [&](auto&& self, uint32_t node) -> void {
    if (cubes.size() >= limit) return;
    if (node == 0) return;
    if (node == 1) {
      cubes.push_back(path);
      return;
    }
    const Node& n = nodes_[node];
    path.push_back({n.var, false});
    self(self, n.lo);
    path.back().positive = true;
    self(self, n.hi);
    path.pop_back();
  };
  rec(rec, f.id());
  return cubes;
}

BddVar BddMgr::top_var(const Bdd& f) const {
  RFN_CHECK(!f.is_null() && f.mgr() == this, "top_var: bad operand");
  if (f.id() < 2) return kNoTopVar;
  return nodes_[f.id()].var;
}

namespace {

// Minato-Morreale ISOP over the interval [L, U]: returns the cover as a BDD
// (exactly L when L == U on entry) and appends its cubes to `out`, or a null
// handle when the cube limit or the manager's node budget trips. Uses only
// public BddMgr operations, so each step is a GC-safe point.
Bdd isop_rec(BddMgr& mgr, const Bdd& L, const Bdd& U, size_t max_cubes,
             std::vector<std::vector<BddLit>>& out) {
  if (L.is_false()) return mgr.bdd_false();
  if (U.is_true()) {
    out.push_back({});
    return out.size() > max_cubes ? Bdd() : mgr.bdd_true();
  }
  // Branch on the top variable of the interval.
  const BddVar vl = mgr.top_var(L);
  const BddVar vu = mgr.top_var(U);
  BddVar v;
  if (vl == BddMgr::kNoTopVar) {
    v = vu;
  } else if (vu == BddMgr::kNoTopVar) {
    v = vl;
  } else {
    v = mgr.level_of(vl) <= mgr.level_of(vu) ? vl : vu;
  }
  const Bdd l0 = mgr.cofactor(L, v, false), l1 = mgr.cofactor(L, v, true);
  const Bdd u0 = mgr.cofactor(U, v, false), u1 = mgr.cofactor(U, v, true);
  if (l0.is_null() || l1.is_null() || u0.is_null() || u1.is_null()) return Bdd();

  // Cubes forced to carry !v: the part of l0 that cannot extend to v = 1.
  const size_t mark0 = out.size();
  const Bdd s0 = isop_rec(mgr, l0.diff(u1), u0, max_cubes, out);
  if (s0.is_null()) return Bdd();
  for (size_t i = mark0; i < out.size(); ++i) out[i].push_back({v, false});
  // Cubes forced to carry v.
  const size_t mark1 = out.size();
  const Bdd s1 = isop_rec(mgr, l1.diff(u0), u1, max_cubes, out);
  if (s1.is_null()) return Bdd();
  for (size_t i = mark1; i < out.size(); ++i) out[i].push_back({v, true});
  // What remains of L must be covered by v-free cubes, valid on both sides.
  const Bdd rest = l0.diff(s0) | l1.diff(s1);
  const Bdd both = u0 & u1;
  if (rest.is_null() || both.is_null()) return Bdd();
  const Bdd sd = isop_rec(mgr, rest, both, max_cubes, out);
  if (sd.is_null()) return Bdd();
  const Bdd cover = (mgr.nvar(v) & s0) | (mgr.var(v) & s1) | sd;
  return cover.is_null() ? Bdd() : cover;
}

}  // namespace

bool BddMgr::isop_cover(const Bdd& f, size_t max_cubes,
                        std::vector<std::vector<BddLit>>* out) {
  RFN_CHECK(!f.is_null() && f.mgr() == this && out != nullptr,
            "isop_cover: bad operand");
  const size_t mark = out->size();
  const Bdd cover = isop_rec(*this, f, f, max_cubes, *out);
  // With L == U the cover is exact by construction; a mismatch means a
  // budget-truncated intermediate slipped through, so reject it like an
  // overflow rather than hand back a wrong invariant.
  if (cover.is_null() || !(cover == f)) {
    out->resize(mark);
    return false;
  }
  for (size_t i = mark; i < out->size(); ++i) {
    std::sort(out->at(i).begin(), out->at(i).end(),
              [](const BddLit& a, const BddLit& b) { return a.var < b.var; });
  }
  return true;
}

bool BddMgr::eval(const Bdd& f, const std::vector<bool>& assignment) {
  RFN_CHECK(!f.is_null() && f.mgr() == this, "eval: bad operand");
  uint32_t node = f.id();
  while (node >= 2) {
    const Node& n = nodes_[node];
    RFN_CHECK(n.var < assignment.size(), "eval: assignment too short");
    node = assignment[n.var] ? n.hi : n.lo;
  }
  return node == 1;
}

size_t BddMgr::node_count(const Bdd& f) {
  RFN_CHECK(!f.is_null() && f.mgr() == this, "node_count: bad operand");
  std::unordered_map<uint32_t, bool> seen;
  std::vector<uint32_t> stack{f.id()};
  size_t count = 0;
  while (!stack.empty()) {
    const uint32_t id = stack.back();
    stack.pop_back();
    if (id < 2 || seen[id]) continue;
    seen[id] = true;
    ++count;
    stack.push_back(nodes_[id].lo);
    stack.push_back(nodes_[id].hi);
  }
  return count;
}

}  // namespace rfn
