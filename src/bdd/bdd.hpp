#pragma once
// Reduced Ordered Binary Decision Diagram (ROBDD) package.
//
// A from-scratch replacement for the CUDD package the paper's prototype used
// [14]. Features required by the RFN engines:
//   * unique tables organized per variable (a prerequisite for in-place
//     adjacent-level swap, hence dynamic reordering);
//   * a lossy computed-table cache for the recursive operators;
//   * reference-counted nodes with deferred garbage collection at operation
//     boundaries ("safe points");
//   * AND / OR / XOR / NOT / ITE, existential quantification, the
//     and-exists relational product used by image computation, variable
//     substitution, cofactors;
//   * cube utilities: satisfying cube, *shortest* cube (the paper's
//     "fattest cube ... with least number of assignments", Section 2.2),
//     per-variable support, model counting;
//   * sifting-based dynamic variable reordering (Section 2.2 "we allow
//     automatic dynamic BDD variable reordering").
//
// Design notes. Nodes have no complement edges; canonical form is the plain
// (var, lo, hi) triple with lo != hi and maximal sharing. node(v, lo, hi)
// denotes (!v & lo) | (v & hi). Node ids are stable across garbage
// collection and reordering (reordering rewrites nodes in place, preserving
// each id's *function*), so external Bdd handles survive both. Garbage
// collection and reordering run only between public operations, never
// inside a recursion.

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/log.hpp"
#include "util/stopwatch.hpp"

namespace rfn {

class BddMgr;

using BddVar = uint32_t;

/// A (variable, polarity) pair; `positive` true means the variable itself.
struct BddLit {
  BddVar var = 0;
  bool positive = true;

  friend bool operator==(const BddLit&, const BddLit&) = default;
};

/// RAII handle to a BDD node. Copying increments the node reference count;
/// destruction decrements it. A default-constructed handle is null.
class Bdd {
 public:
  Bdd() = default;
  Bdd(const Bdd& other);
  Bdd(Bdd&& other) noexcept;
  Bdd& operator=(const Bdd& other);
  Bdd& operator=(Bdd&& other) noexcept;
  ~Bdd();

  bool is_null() const { return mgr_ == nullptr; }
  bool is_false() const;
  bool is_true() const;
  bool is_terminal() const { return is_false() || is_true(); }

  uint32_t id() const { return id_; }
  BddMgr* mgr() const { return mgr_; }

  /// Structural equality; by canonicity this is semantic equivalence.
  friend bool operator==(const Bdd& a, const Bdd& b) {
    return a.mgr_ == b.mgr_ && a.id_ == b.id_;
  }

  // Logical operators (null-safe only for assignment; operands must be
  // non-null and share a manager).
  Bdd operator&(const Bdd& o) const;
  Bdd operator|(const Bdd& o) const;
  Bdd operator^(const Bdd& o) const;
  Bdd operator!() const;
  Bdd& operator&=(const Bdd& o) { return *this = *this & o; }
  Bdd& operator|=(const Bdd& o) { return *this = *this | o; }

  /// f & !o
  Bdd diff(const Bdd& o) const { return *this & !o; }
  /// True iff this implies o (f & !o == false).
  bool implies(const Bdd& o) const;
  /// True iff the conjunction is satisfiable.
  bool intersects(const Bdd& o) const { return !((*this & o).is_false()); }

 private:
  friend class BddMgr;
  Bdd(BddMgr* mgr, uint32_t id);  // takes no extra reference; used internally

  BddMgr* mgr_ = nullptr;
  uint32_t id_ = 0;
};

/// Statistics snapshot for logs and benches.
struct BddStats {
  size_t live_nodes = 0;
  /// High-water mark of live_nodes over the manager's lifetime — the
  /// capacity metric the CEGAR loop reports per iteration and the bench
  /// regression gate tracks.
  size_t peak_live_nodes = 0;
  size_t allocated_nodes = 0;
  size_t num_vars = 0;
  size_t gc_runs = 0;
  size_t reorderings = 0;
  size_t cache_lookups = 0;
  size_t cache_hits = 0;
  /// Byte-exact arena footprint: node pool + unique-table buckets +
  /// computed cache, by *capacity* (what the vectors actually hold from the
  /// allocator). The arena never shrinks — freed nodes go to the free list —
  /// so live == peak within one manager; both are kept so the metrics
  /// vocabulary matches the SAT solver's, whose watch lists can be resized.
  size_t heap_bytes = 0;
  size_t heap_peak_bytes = 0;

  /// Computed-cache hit rate in [0, 1]; 0 when no lookups happened.
  double cache_hit_rate() const {
    return cache_lookups == 0
               ? 0.0
               : static_cast<double>(cache_hits) / static_cast<double>(cache_lookups);
  }
};

/// Merges one manager's lifetime statistics into the global metrics
/// registry ("bdd.*": counters for gc/reorder/cache totals, gauge maxima
/// for the node high-water marks). BddMgr itself never touches the global
/// registry — its counters are plain fields on the hot path — so owners
/// flush exactly once per manager, at a natural boundary (RFN flushes the
/// per-iteration Step-2 manager after the race; benches flush before
/// exporting counters).
void publish_bdd_metrics(const BddStats& s);

class BddMgr {
 public:
  explicit BddMgr(uint32_t initial_vars = 0);
  ~BddMgr();

  BddMgr(const BddMgr&) = delete;
  BddMgr& operator=(const BddMgr&) = delete;

  // --- variables ---

  /// Creates a fresh variable at the bottom of the current order.
  BddVar new_var();
  uint32_t num_vars() const { return static_cast<uint32_t>(perm_.size()); }
  /// Current level of a variable (0 = top).
  uint32_t level_of(BddVar v) const { return perm_[v]; }
  /// Variable at a level.
  BddVar var_at_level(uint32_t level) const { return invperm_[level]; }

  // --- constants and literals ---

  Bdd bdd_false() { return make(0); }
  Bdd bdd_true() { return make(1); }
  Bdd literal(BddVar v, bool positive = true);
  Bdd var(BddVar v) { return literal(v, true); }
  Bdd nvar(BddVar v) { return literal(v, false); }

  // --- core operations ---

  Bdd apply_and(const Bdd& f, const Bdd& g);
  Bdd apply_or(const Bdd& f, const Bdd& g);
  Bdd apply_xor(const Bdd& f, const Bdd& g);
  Bdd apply_not(const Bdd& f);
  Bdd ite(const Bdd& f, const Bdd& g, const Bdd& h);

  /// Cofactor of f with v set to `value`.
  Bdd cofactor(const Bdd& f, BddVar v, bool value);

  /// Existential quantification of `vars` out of f.
  Bdd exists(const Bdd& f, const std::vector<BddVar>& vars);
  /// Universal quantification.
  Bdd forall(const Bdd& f, const std::vector<BddVar>& vars);
  /// exists(vars, f & g) computed without building f & g — the relational
  /// product at the heart of image computation.
  Bdd and_exists(const Bdd& f, const Bdd& g, const std::vector<BddVar>& vars);

  /// Simultaneous variable substitution: var v is replaced by map[v]
  /// (identity where map[v] == v). Works for arbitrary (even
  /// order-violating) maps.
  Bdd rename(const Bdd& f, const std::vector<BddVar>& map);

  /// Conjunction of literals as a BDD.
  Bdd cube(const std::vector<BddLit>& lits);

  // --- queries ---

  /// Variables in the support of f, ascending by variable index.
  std::vector<BddVar> support(const Bdd& f);
  /// Number of satisfying assignments over `nvars` variables.
  double sat_count(const Bdd& f, uint32_t nvars);
  /// Some satisfying cube (empty for the constants).
  std::vector<BddLit> any_cube(const Bdd& f);
  /// A satisfying cube with the minimum number of literals — the paper's
  /// "fattest cube". Returns empty if f is a constant.
  std::vector<BddLit> shortest_cube(const Bdd& f);
  /// Up to `limit` distinct satisfying path-cubes of f in DFS order. The
  /// hybrid trace engine iterates these when ATPG rejects a candidate.
  std::vector<std::vector<BddLit>> first_cubes(const Bdd& f, size_t limit);
  /// Top variable of f (the one at the highest level in f's DAG);
  /// kNoTopVar for terminals. f must be non-null.
  static constexpr BddVar kNoTopVar = 0xFFFFFFFFu;
  BddVar top_var(const Bdd& f) const;
  /// Irredundant sum-of-products (Minato-Morreale ISOP): a cube cover whose
  /// disjunction is exactly f, appended to `out` with each cube's literals
  /// sorted by variable. Returns false — with `out` cleared — when the
  /// cover exceeds `max_cubes` cubes or the node budget trips mid-way.
  /// Certificate extraction turns the cover of a reached-set complement
  /// into invariant clauses.
  bool isop_cover(const Bdd& f, size_t max_cubes,
                  std::vector<std::vector<BddLit>>* out);
  /// Evaluates f under a total assignment (indexed by variable).
  bool eval(const Bdd& f, const std::vector<bool>& assignment);
  /// DAG size of f (internal nodes, excluding terminals).
  size_t node_count(const Bdd& f);

  // --- memory management & reordering ---

  /// Hard cap on live nodes (0 = unlimited). When an operation would grow
  /// the manager past the cap, it is abandoned: the public call returns a
  /// null Bdd, intermediate garbage is collected, and the manager stays
  /// consistent. This is how resource-bounded runs (plain MC on oversized
  /// designs, per-iteration limits in RFN) fail gracefully.
  void set_node_budget(size_t max_live_nodes) { node_budget_ = max_live_nodes; }
  size_t node_budget() const { return node_budget_; }

  /// Wall-clock guard checked inside the recursive operators (every few
  /// thousand cache probes): an operation that thrashes the lossy computed
  /// table can burn unbounded CPU without allocating, so the node budget
  /// alone cannot bound it. Pass nullptr to clear. The Deadline must
  /// outlive the manager or be cleared before it dies.
  void set_deadline(const Deadline* deadline) { deadline_ = deadline; }

  void garbage_collect();
  /// Runs one sifting pass over all variables. Returns live node delta.
  void reorder_sift();
  /// Enables automatic sifting when the live node count crosses a growing
  /// threshold (checked at operation boundaries).
  void set_auto_reorder(bool enabled) { auto_reorder_ = enabled; }
  /// Captures / restores a variable order (vector of variables, top first).
  std::vector<BddVar> current_order() const { return invperm_; }
  void set_order(const std::vector<BddVar>& order);

  const BddStats& stats() const { return stats_; }
  size_t live_nodes() const { return stats_.live_nodes; }

  /// Tracked arena bytes (stats().heap_bytes, maintained incrementally at
  /// every growth site) and an O(vars) recomputation from the live vector
  /// capacities. prof_test pins tracked == recomputed after alloc, GC and
  /// reorder — the incremental counter may never drift.
  size_t heap_bytes() const { return stats_.heap_bytes; }
  size_t heap_bytes_recomputed() const {
    size_t bytes = nodes_.capacity() * sizeof(Node) +
                   cache_.capacity() * sizeof(CacheEntry);
    for (const Subtable& st : subtables_)
      bytes += st.buckets.capacity() * sizeof(uint32_t);
    return bytes;
  }

  /// Telemetry probe for watchers on other threads (the resource watchdog).
  /// The manager relaxed-stores the current live-node count into `probe`
  /// whenever it changes; stats() itself is single-threaded state and must
  /// never be read off-thread. Pass nullptr to detach. The atomic must
  /// outlive the manager or be detached before it dies.
  void set_live_node_probe(std::atomic<int64_t>* probe) {
    live_node_probe_ = probe;
    publish_live_nodes();
  }

  /// Validates internal invariants (canonicity, refcount consistency,
  /// subtable membership). O(nodes); used by tests.
  void check_integrity() const;

 private:
  friend class Bdd;
  friend class BddReorderTestPeer;

  struct Node {
    BddVar var;     // kInvalidVar when on the free list; kTermVar for 0/1
    uint32_t lo, hi;
    uint32_t next;  // unique-table chain / free-list link
    uint32_t rc;    // parents + external handles; saturates at kMaxRc
  };
  static constexpr BddVar kTermVar = 0xFFFFFFFEu;
  static constexpr BddVar kInvalidVar = 0xFFFFFFFFu;
  static constexpr uint32_t kNil = 0xFFFFFFFFu;
  static constexpr uint32_t kMaxRc = 0xFFFFFFF0u;

  struct Subtable {
    std::vector<uint32_t> buckets;  // heads of chains, kNil-terminated
    uint32_t count = 0;             // nodes currently in this subtable
  };

  enum class Op : uint8_t {
    And = 1, Xor, Not, Ite, Exists, Forall, AndExists,
  };

  struct CacheEntry {
    uint32_t a = kNil, b = kNil, c = kNil;
    uint32_t result = kNil;
    Op op{};
  };

  // node helpers
  uint32_t level(uint32_t node) const {
    const BddVar v = nodes_[node].var;
    return v == kTermVar ? kTermLevel : perm_[v];
  }
  static constexpr uint32_t kTermLevel = 0xFFFFFFFFu;

  void inc_rc(uint32_t node);
  void dec_rc(uint32_t node);
  uint32_t find_or_add(BddVar v, uint32_t lo, uint32_t hi);
  void subtable_insert(Subtable& st, uint32_t node);
  void subtable_remove(Subtable& st, uint32_t node);
  void maybe_grow(Subtable& st);
  static size_t hash_pair(uint32_t lo, uint32_t hi, size_t mask);

  // cache
  uint32_t cache_lookup(Op op, uint32_t a, uint32_t b, uint32_t c);
  void cache_insert(Op op, uint32_t a, uint32_t b, uint32_t c, uint32_t result);
  void cache_clear();

  // recursive workers (raw ids; no rc manipulation on results)
  uint32_t and_rec(uint32_t f, uint32_t g);
  uint32_t xor_rec(uint32_t f, uint32_t g);
  uint32_t not_rec(uint32_t f);
  uint32_t ite_rec(uint32_t f, uint32_t g, uint32_t h);
  uint32_t exists_rec(uint32_t f, uint32_t cube);
  uint32_t and_exists_rec(uint32_t f, uint32_t g, uint32_t cube);
  uint32_t cofactor_rec(uint32_t f, BddVar v, bool value,
                        std::vector<uint32_t>& memo);
  /// Cofactors f by variable at `lvl` (identity if f is below).
  void cofactors(uint32_t f, uint32_t lvl, uint32_t& f0, uint32_t& f1) const;

  /// Safe point: run pending GC / auto-reorder. Called on public entry.
  void housekeeping();
  Bdd make(uint32_t id);  // wraps id into a referenced handle

  // reordering internals (reorder.cpp)
  size_t swap_levels(uint32_t lvl);  // swaps lvl and lvl+1; returns live count
  void sift_var(BddVar v, size_t& best_live);
  void free_dead_node(uint32_t node);  // node with rc==0: unlink + cascade

  std::vector<Node> nodes_;
  uint32_t free_head_ = kNil;
  size_t free_count_ = 0;
  size_t dead_estimate_ = 0;

  std::vector<Subtable> subtables_;   // indexed by var
  std::vector<uint32_t> perm_;        // var -> level
  std::vector<BddVar> invperm_;       // level -> var

  std::vector<CacheEntry> cache_;
  size_t cache_mask_ = 0;

  bool auto_reorder_ = false;
  size_t reorder_threshold_ = 1u << 14;
  bool in_reorder_ = false;
  size_t node_budget_ = 0;
  const Deadline* deadline_ = nullptr;
  uint64_t deadline_tick_ = 0;
  std::atomic<int64_t>* live_node_probe_ = nullptr;

  void publish_live_nodes() {
    if (live_node_probe_ != nullptr)
      live_node_probe_->store(static_cast<int64_t>(stats_.live_nodes),
                              std::memory_order_relaxed);
  }

  /// Applies a capacity delta (in bytes) from one growth site. Every
  /// mutation that can change a tracked vector's capacity brackets itself
  /// with before/after capacities so stats_.heap_bytes stays byte-exact
  /// against heap_bytes_recomputed().
  void heap_track(size_t before_bytes, size_t after_bytes) {
    stats_.heap_bytes += after_bytes - before_bytes;
    if (stats_.heap_bytes > stats_.heap_peak_bytes)
      stats_.heap_peak_bytes = stats_.heap_bytes;
  }

  /// Thrown by find_or_add when the node budget is exceeded; caught at the
  /// public operation boundary.
  struct BudgetExceeded {};

  /// Runs a recursive worker at a public boundary: housekeeping first, wrap
  /// the raw result in a handle, and convert a blown node budget into a
  /// null handle (after collecting the abandoned intermediates, which are
  /// all unreferenced and thus reclaimable).
  template <typename Fn>
  Bdd run_guarded(Fn&& fn) {
    housekeeping();
    try {
      return make(fn());
    } catch (const BudgetExceeded&) {
      garbage_collect();
      return Bdd();
    }
  }

  BddStats stats_;
};

/// Pretty-prints a literal list like "x3 & !x7 & x9" (for diagnostics).
std::string lits_to_string(const std::vector<BddLit>& lits);

}  // namespace rfn
