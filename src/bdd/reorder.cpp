#include <algorithm>
#include <numeric>

#include "bdd/bdd.hpp"
#include "util/trace.hpp"

// Dynamic variable reordering by sifting (Rudell's algorithm).
//
// The primitive is an in-place swap of two adjacent levels: every node
// labeled with the upper variable x that depends on the lower variable y is
// rewritten in place — it keeps its node id and its function, so all
// external handles and all parents stay valid — while its children are
// re-expressed with x below y. Sifting then moves each variable through the
// order with repeated swaps and parks it at the position that minimizes the
// live node count.

namespace rfn {

size_t BddMgr::swap_levels(uint32_t lvl) {
  RFN_CHECK(lvl + 1 < num_vars(), "swap_levels at bottom");
  const BddVar x = invperm_[lvl];      // upper variable, moves down
  const BddVar y = invperm_[lvl + 1];  // lower variable, moves up

  // Snapshot x's subtable: the loop below inserts new x nodes (which never
  // depend on y) into the same table.
  std::vector<uint32_t> snapshot;
  snapshot.reserve(subtables_[x].count);
  for (uint32_t head : subtables_[x].buckets)
    for (uint32_t n = head; n != kNil; n = nodes_[n].next) snapshot.push_back(n);

  std::vector<uint32_t> maybe_dead;
  for (const uint32_t id : snapshot) {
    const uint32_t lo = nodes_[id].lo;
    const uint32_t hi = nodes_[id].hi;
    const bool lo_y = lo >= 2 && nodes_[lo].var == y;
    const bool hi_y = hi >= 2 && nodes_[hi].var == y;
    if (!lo_y && !hi_y) continue;  // independent of y: stays labeled x

    // f = !x(!y f00 + y f01) + x(!y f10 + y f11)
    //   = !y(!x f00 + x f10) + y(!x f01 + x f11)
    const uint32_t f00 = lo_y ? nodes_[lo].lo : lo;
    const uint32_t f01 = lo_y ? nodes_[lo].hi : lo;
    const uint32_t f10 = hi_y ? nodes_[hi].lo : hi;
    const uint32_t f11 = hi_y ? nodes_[hi].hi : hi;

    subtable_remove(subtables_[x], id);
    const uint32_t n0 = find_or_add(x, f00, f10);
    const uint32_t n1 = find_or_add(x, f01, f11);
    RFN_CHECK(n0 != n1, "swap produced redundant node");
    inc_rc(n0);
    inc_rc(n1);
    // The old children lose their edge from this node.
    for (uint32_t child : {lo, hi}) {
      Node& c = nodes_[child];
      if (c.var == kTermVar || c.rc >= kMaxRc) continue;
      RFN_CHECK(c.rc > 0, "swap: child refcount underflow");
      if (--c.rc == 0) {
        ++dead_estimate_;
        maybe_dead.push_back(child);
      }
    }
    Node& n = nodes_[id];
    n.var = y;
    n.lo = n0;
    n.hi = n1;
    subtable_insert(subtables_[y], id);
  }

  for (uint32_t d : maybe_dead)
    if (nodes_[d].var != kInvalidVar && nodes_[d].rc == 0) free_dead_node(d);

  std::swap(perm_[x], perm_[y]);
  invperm_[lvl] = y;
  invperm_[lvl + 1] = x;
  return stats_.live_nodes;
}

void BddMgr::sift_var(BddVar v, size_t& best_live) {
  // Growth abort: a direction is abandoned once the table exceeds this
  // factor of the best size seen for this variable.
  constexpr double kMaxGrowth = 1.2;
  const uint32_t bottom = num_vars() - 1;

  size_t best = stats_.live_nodes;
  uint32_t best_level = perm_[v];

  // Phase 1: sift toward the closer end first to halve the expected work.
  const bool down_first = perm_[v] >= num_vars() / 2;
  for (int phase = 0; phase < 2; ++phase) {
    const bool down = (phase == 0) == down_first;
    while (down ? perm_[v] < bottom : perm_[v] > 0) {
      const size_t live = swap_levels(down ? perm_[v] : perm_[v] - 1);
      if (live < best) {
        best = live;
        best_level = perm_[v];
      }
      if (static_cast<double>(live) > kMaxGrowth * static_cast<double>(best)) break;
    }
  }
  // Phase 2: park at the best level seen.
  while (perm_[v] > best_level) swap_levels(perm_[v] - 1);
  while (perm_[v] < best_level) swap_levels(perm_[v]);
  best_live = best;
}

void BddMgr::reorder_sift() {
  if (num_vars() < 2 || in_reorder_) return;
  Span span("bdd.reorder");
  in_reorder_ = true;
  garbage_collect();  // also clears the computed table
  const size_t before = stats_.live_nodes;

  // Visit variables in decreasing subtable size: big levels first is the
  // standard heuristic, and a cap keeps pathological managers bounded.
  std::vector<BddVar> order(num_vars());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](BddVar a, BddVar b) {
    return subtables_[a].count != subtables_[b].count
               ? subtables_[a].count > subtables_[b].count
               : a < b;
  });
  const size_t max_vars = std::min<size_t>(order.size(), 1000);
  for (size_t i = 0; i < max_vars; ++i) {
    if (deadline_ && deadline_->expired()) break;  // finish gracefully
    if (subtables_[order[i]].count == 0) continue;
    size_t best = 0;
    sift_var(order[i], best);
  }
  ++stats_.reorderings;
  in_reorder_ = false;
  publish_live_nodes();
  span.annotate("live_nodes", static_cast<double>(stats_.live_nodes));
  RFN_DEBUG("reorder: %zu -> %zu live nodes", before, stats_.live_nodes);
}

void BddMgr::set_order(const std::vector<BddVar>& order) {
  RFN_CHECK(order.size() == num_vars(), "set_order: wrong length");
  in_reorder_ = true;
  garbage_collect();
  // Selection sort with adjacent swaps: cheap when tables are small (the
  // intended use: seeding a fresh manager with the order saved from the
  // previous CEGAR iteration, per the end of paper Section 2.2).
  for (uint32_t target = 0; target < order.size(); ++target) {
    const BddVar v = order[target];
    RFN_CHECK(perm_[v] >= target, "set_order: duplicate variable %u", v);
    while (perm_[v] > target) swap_levels(perm_[v] - 1);
  }
  in_reorder_ = false;
}

}  // namespace rfn
