#pragma once
// Elaboration: AST -> gate-level netlist (syntax-directed synthesis).
//
// Vectors are bit-blasted. Continuous assignments become combinational
// logic. Each always @(posedge clk) block is interpreted symbolically: a
// non-blocking assignment under conditions becomes a mux tree selecting
// between the register's hold value and the assigned expressions, exactly
// one next-state function per register bit; `case` lowers to a
// label-comparison mux cascade. The clock itself does not appear in the
// netlist (it is implicit in the Reg primitive); designs are single-clock.
//
// Hierarchy is flattened: instances are elaborated recursively into the
// same netlist, with cell names prefixed "instance.". Instance inputs bind
// to parent expressions; instance outputs drive parent wires (the
// connection must be a whole identifier). Elaboration of an instance is
// demand-driven, so instances may be declared in any order as long as the
// combinational logic is acyclic.

#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "rtlv/ast.hpp"

namespace rfn::rtlv {

struct ElaboratedDesign {
  Netlist netlist;
  std::string module_name;
};

/// Elaborates `top` against a library of modules (for instantiation).
ElaboratedDesign elaborate(const Module& top, const std::vector<Module>& library = {});

/// Parses + elaborates Verilog source. With multiple modules, `top` names
/// the root (empty = the last module in the file, the common convention).
ElaboratedDesign elaborate_verilog(const std::string& source,
                                   const std::string& top = "");

}  // namespace rfn::rtlv
