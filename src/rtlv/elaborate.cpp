#include "rtlv/elaborate.hpp"

#include <map>
#include <set>

#include "netlist/builder.hpp"
#include "rtlv/parser.hpp"
#include "util/log.hpp"

namespace rfn::rtlv {

namespace {

using ModuleLibrary = std::map<std::string, const Module*>;

/// Input ports of `m` that act as clocks: referenced in its own always
/// blocks or wired (as plain identifiers) into a clock port of an instance.
std::set<std::string> clock_ports(const Module& m, const ModuleLibrary& lib) {
  std::set<std::string> clocks;
  for (const AlwaysBlock& ab : m.always) clocks.insert(ab.clock);
  for (const Instance& inst : m.instances) {
    const auto child_it = lib.find(inst.module_name);
    if (child_it == lib.end()) continue;  // diagnosed later
    const std::set<std::string> child_clocks = clock_ports(*child_it->second, lib);
    for (size_t ci = 0; ci < inst.connections.size(); ++ci) {
      std::string port = inst.connections[ci].first;
      if (inst.positional && ci < child_it->second->ports.size())
        port = child_it->second->ports[ci];
      if (child_clocks.count(port) > 0 &&
          inst.connections[ci].second->kind == ExprKind::Ident)
        clocks.insert(inst.connections[ci].second->name);
    }
  }
  return clocks;
}

class Elaborator {
 public:
  Elaborator(const Module& m, const ModuleLibrary& lib, NetBuilder& b,
             std::string prefix)
      : m_(m), lib_(lib), b_(b), prefix_(std::move(prefix)) {}

  /// Elaborates the module body. `port_bindings` supplies pre-elaborated
  /// words for input ports (instance inputs); unbound non-clock inputs
  /// become primary inputs of the netlist.
  void run(const std::map<std::string, Word>& port_bindings) {
    collect_decls();
    create_storage(port_bindings);
    index_assigns();
    index_instance_outputs();
    // Force-resolve every wire so undriven nets are diagnosed even when
    // nothing reads them.
    for (const auto& [name, d] : decls_)
      if (d.kind == NetDecl::Kind::Wire || d.kind == NetDecl::Kind::Output)
        wire_word(name);
    // Elaborate any instance nothing demanded yet (for its side effects,
    // e.g. registers and watchdogs inside it).
    for (size_t i = 0; i < m_.instances.size(); ++i) ensure_instance(i);
    process_always_blocks();
  }

  /// The word driving an output port (valid after run()).
  Word port_word(const std::string& port) {
    const auto it = decls_.find(port);
    RFN_CHECK(it != decls_.end(), "unknown port '%s'", port.c_str());
    RFN_CHECK(it->second.kind != NetDecl::Kind::Input, "'%s' is an input port",
              port.c_str());
    return it->second.kind == NetDecl::Kind::Reg ? words_.at(port) : wire_word(port);
  }

  /// Exports the module's output ports as netlist outputs (top level only).
  void export_outputs() {
    for (const std::string& p : m_.ports) {
      const NetDecl& d = decls_.at(p);
      if (d.kind == NetDecl::Kind::Input) continue;
      const Word w = port_word(p);
      if (d.width == 1) {
        b_.output(p, w[0]);
      } else {
        for (int i = 0; i < d.width; ++i)
          b_.output(p + "[" + std::to_string(i + d.lsb) + "]",
                    w[static_cast<size_t>(i)]);
      }
    }
  }

  const std::set<std::string>& clocks() const { return clocks_; }

 private:
  // ---- declarations ----

  void collect_decls() {
    clocks_ = clock_ports(m_, lib_);
    for (const NetDecl& d : m_.decls) {
      RFN_CHECK(decls_.find(d.name) == decls_.end(), "line %d: duplicate net '%s'",
                d.line, d.name.c_str());
      decls_[d.name] = d;
    }
    for (const std::string& p : m_.ports)
      RFN_CHECK(decls_.count(p) > 0, "undeclared port '%s'", p.c_str());
  }

  void create_storage(const std::map<std::string, Word>& port_bindings) {
    for (const auto& [name, d] : decls_) {
      switch (d.kind) {
        case NetDecl::Kind::Input: {
          const auto bound = port_bindings.find(name);
          if (bound != port_bindings.end()) {
            words_[name] = resize(bound->second, static_cast<size_t>(d.width));
            break;
          }
          if (clocks_.count(name) > 0) break;  // clocks are implicit
          words_[name] = d.width == 1
                             ? Word{b_.input(prefix_ + name)}
                             : b_.input_word(prefix_ + name,
                                             static_cast<size_t>(d.width));
          break;
        }
        case NetDecl::Kind::Reg: {
          const uint64_t init = d.has_init ? d.init : 0;
          words_[name] = d.width == 1
                             ? Word{b_.reg(prefix_ + name, tri_of(init & 1))}
                             : b_.reg_word(prefix_ + name,
                                           static_cast<size_t>(d.width), init);
          break;
        }
        case NetDecl::Kind::Output:
        case NetDecl::Kind::Wire:
          break;  // resolved from drivers on demand
      }
    }
  }

  void index_assigns() {
    for (const ContAssign& ca : m_.assigns) {
      const std::string& name = ca.lhs->name;
      const auto it = decls_.find(name);
      RFN_CHECK(it != decls_.end(), "line %d: assign to undeclared '%s'", ca.line,
                name.c_str());
      RFN_CHECK(it->second.kind == NetDecl::Kind::Wire ||
                    it->second.kind == NetDecl::Kind::Output,
                "line %d: assign to non-wire '%s'", ca.line, name.c_str());
      int lo = 0, hi = it->second.width - 1;
      if (ca.lhs->kind == ExprKind::Index) lo = hi = ca.lhs->index - it->second.lsb;
      if (ca.lhs->kind == ExprKind::Range) {
        lo = ca.lhs->lsb - it->second.lsb;
        hi = ca.lhs->msb - it->second.lsb;
      }
      for (int bit = lo; bit <= hi; ++bit) {
        RFN_CHECK(bit >= 0 && bit < it->second.width, "line %d: bit %d out of range",
                  ca.line, bit);
        const auto key = std::make_pair(name, bit);
        RFN_CHECK(drivers_.find(key) == drivers_.end(),
                  "line %d: '%s' bit %d multiply driven", ca.line, name.c_str(), bit);
        drivers_[key] = {&ca, bit - lo};
      }
    }
  }

  void index_instance_outputs() {
    for (size_t idx = 0; idx < m_.instances.size(); ++idx) {
      const Instance& inst = m_.instances[idx];
      const Module* child = find_module(inst.module_name, inst.line);
      for (size_t ci = 0; ci < inst.connections.size(); ++ci) {
        const std::string port = connection_port(inst, *child, ci);
        const NetDecl* pd = find_port_decl(*child, port, inst.line);
        if (pd->kind == NetDecl::Kind::Input) continue;
        // Output connection: must be a whole identifier naming a wire.
        const Expr& target = *inst.connections[ci].second;
        RFN_CHECK(target.kind == ExprKind::Ident,
                  "line %d: instance output '%s' must connect to a whole wire",
                  inst.line, port.c_str());
        const auto dit = decls_.find(target.name);
        RFN_CHECK(dit != decls_.end() && (dit->second.kind == NetDecl::Kind::Wire ||
                                          dit->second.kind == NetDecl::Kind::Output),
                  "line %d: instance output must drive a declared wire", inst.line);
        RFN_CHECK(instance_outputs_.emplace(target.name, std::make_pair(idx, port)).second,
                  "line %d: wire '%s' multiply driven by instances", inst.line,
                  target.name.c_str());
      }
    }
  }

  const Module* find_module(const std::string& name, int line) const {
    const auto it = lib_.find(name);
    RFN_CHECK(it != lib_.end(), "line %d: unknown module '%s'", line, name.c_str());
    return it->second;
  }

  static const NetDecl* find_port_decl(const Module& child, const std::string& port,
                                       int line) {
    for (const NetDecl& d : child.decls)
      if (d.name == port) return &d;
    fatal(detail::format("line %d: module '%s' has no port '%s'", line,
                         child.name.c_str(), port.c_str()));
  }

  std::string connection_port(const Instance& inst, const Module& child,
                              size_t ci) const {
    if (!inst.positional) return inst.connections[ci].first;
    RFN_CHECK(ci < child.ports.size(), "line %d: too many positional connections",
              inst.line);
    return child.ports[ci];
  }

  // ---- instances (demand-driven elaboration) ----

  void ensure_instance(size_t idx) {
    if (instance_done_.count(idx) > 0) return;
    RFN_CHECK(instance_busy_.insert(idx).second,
              "combinational cycle through instance '%s'",
              m_.instances[idx].instance_name.c_str());
    const Instance& inst = m_.instances[idx];
    const Module* child = find_module(inst.module_name, inst.line);

    Elaborator sub(*child, lib_, b_, prefix_ + inst.instance_name + ".");
    // The child's clock ports (including those it merely forwards to its
    // own instances) are skipped rather than evaluated.
    const std::set<std::string> child_clocks = clock_ports(*child, lib_);

    std::map<std::string, Word> bindings;
    for (size_t ci = 0; ci < inst.connections.size(); ++ci) {
      const std::string port = connection_port(inst, *child, ci);
      const NetDecl* pd = find_port_decl(*child, port, inst.line);
      if (pd->kind != NetDecl::Kind::Input || child_clocks.count(port) > 0) continue;
      bindings[port] = resize(eval(*inst.connections[ci].second),
                              static_cast<size_t>(pd->width));
    }
    sub.run(bindings);

    // Publish the child's outputs into the parent's wire table.
    for (size_t ci = 0; ci < inst.connections.size(); ++ci) {
      const std::string port = connection_port(inst, *child, ci);
      const NetDecl* pd = find_port_decl(*child, port, inst.line);
      if (pd->kind == NetDecl::Kind::Input) continue;
      const std::string& wire = inst.connections[ci].second->name;
      const NetDecl& wd = decls_.at(wire);
      words_[wire] = resize(sub.port_word(port), static_cast<size_t>(wd.width));
    }
    instance_busy_.erase(idx);
    instance_done_.insert(idx);
  }

  // ---- wire resolution (demand-driven with cycle detection) ----

  GateId wire_bit(const std::string& name, int bit) {
    const auto it = words_.find(name);
    if (it != words_.end() && !it->second.empty() &&
        it->second[static_cast<size_t>(bit)] != kNullGate)
      return it->second[static_cast<size_t>(bit)];

    // Instance-driven wire: elaborate the instance, which fills words_.
    const auto inst_it = instance_outputs_.find(name);
    if (inst_it != instance_outputs_.end()) {
      ensure_instance(inst_it->second.first);
      return words_.at(name)[static_cast<size_t>(bit)];
    }

    const NetDecl& d = decls_.at(name);
    if (words_.find(name) == words_.end())
      words_[name] = Word(static_cast<size_t>(d.width), kNullGate);
    Word& w = words_[name];

    const auto dit = drivers_.find({name, bit});
    RFN_CHECK(dit != drivers_.end(), "wire '%s%s' bit %d has no driver",
              prefix_.c_str(), name.c_str(), bit);
    const auto key = std::make_pair(name, bit);
    RFN_CHECK(resolving_.insert(key).second,
              "combinational cycle through wire '%s' bit %d", name.c_str(), bit);
    const Word rhs = eval(*dit->second.first->rhs);
    // All bits covered by this assignment resolve together.
    int lo = 0, hi = d.width - 1;
    const Expr& lhs = *dit->second.first->lhs;
    if (lhs.kind == ExprKind::Index) lo = hi = lhs.index - d.lsb;
    if (lhs.kind == ExprKind::Range) {
      lo = lhs.lsb - d.lsb;
      hi = lhs.msb - d.lsb;
    }
    const Word sized = resize(rhs, static_cast<size_t>(hi - lo + 1));
    for (int i = lo; i <= hi; ++i)
      w[static_cast<size_t>(i)] = sized[static_cast<size_t>(i - lo)];
    resolving_.erase(key);
    return w[static_cast<size_t>(bit)];
  }

  Word wire_word(const std::string& name) {
    const NetDecl& d = decls_.at(name);
    Word w(static_cast<size_t>(d.width));
    for (int i = 0; i < d.width; ++i) w[static_cast<size_t>(i)] = wire_bit(name, i);
    return w;
  }

  // ---- expression evaluation ----

  Word resize(const Word& w, size_t width) {
    Word out = w;
    while (out.size() < width) out.push_back(b_.constant(false));
    out.resize(width);
    return out;
  }

  GateId reduce_or(const Word& w) { return b_.or_n(w); }

  Word word_of(const std::string& name, int line) {
    const auto dit = decls_.find(name);
    RFN_CHECK(dit != decls_.end(), "line %d: undeclared identifier '%s'", line,
              name.c_str());
    RFN_CHECK(clocks_.count(name) == 0, "line %d: clock '%s' used in expression", line,
              name.c_str());
    const NetDecl& d = dit->second;
    if (d.kind == NetDecl::Kind::Wire || d.kind == NetDecl::Kind::Output)
      return wire_word(name);
    return words_.at(name);
  }

  Word eval(const Expr& e) {
    switch (e.kind) {
      case ExprKind::Const: {
        const size_t w = e.width > 0 ? static_cast<size_t>(e.width) : 32;
        return b_.constant_word(e.value, w);
      }
      case ExprKind::Ident:
        return word_of(e.name, e.line);
      case ExprKind::Index: {
        const NetDecl& d = decls_.at(e.name);
        const int bit = e.index - d.lsb;
        RFN_CHECK(bit >= 0 && bit < d.width, "line %d: index out of range", e.line);
        return {word_of(e.name, e.line)[static_cast<size_t>(bit)]};
      }
      case ExprKind::Range: {
        const NetDecl& d = decls_.at(e.name);
        const Word full = word_of(e.name, e.line);
        Word out;
        for (int i = e.lsb; i <= e.msb; ++i) {
          const int bit = i - d.lsb;
          RFN_CHECK(bit >= 0 && bit < d.width, "line %d: range out of bounds", e.line);
          out.push_back(full[static_cast<size_t>(bit)]);
        }
        return out;
      }
      case ExprKind::Unary: {
        const Word a = eval(*e.a);
        switch (e.un_op) {
          case UnOp::Not: return b_.not_word(a);
          case UnOp::LogNot: return {b_.not_(reduce_or(a))};
          case UnOp::RedAnd: return {b_.all(a)};
          case UnOp::RedOr: return {b_.any(a)};
          case UnOp::RedXor: {
            GateId acc = a[0];
            for (size_t i = 1; i < a.size(); ++i) acc = b_.xor_(acc, a[i]);
            return {acc};
          }
          case UnOp::Neg:
            return b_.sub_word(b_.constant_word(0, a.size()), a);
        }
        break;
      }
      case ExprKind::Binary: {
        Word a = eval(*e.a);
        Word c = eval(*e.b);
        const size_t w = std::max(a.size(), c.size());
        switch (e.bin_op) {
          case BinOp::And: return b_.and_word(resize(a, w), resize(c, w));
          case BinOp::Or: return b_.or_word(resize(a, w), resize(c, w));
          case BinOp::Xor: return b_.xor_word(resize(a, w), resize(c, w));
          case BinOp::Xnor: return b_.not_word(b_.xor_word(resize(a, w), resize(c, w)));
          case BinOp::LogAnd: return {b_.and_(reduce_or(a), reduce_or(c))};
          case BinOp::LogOr: return {b_.or_(reduce_or(a), reduce_or(c))};
          case BinOp::Add: return b_.add_word(resize(a, w), resize(c, w));
          case BinOp::Sub: return b_.sub_word(resize(a, w), resize(c, w));
          case BinOp::Eq: return {b_.eq_word(resize(a, w), resize(c, w))};
          case BinOp::Ne: return {b_.not_(b_.eq_word(resize(a, w), resize(c, w)))};
          case BinOp::Lt: return {b_.lt_word(resize(a, w), resize(c, w))};
          case BinOp::Le: return {b_.le_word(resize(a, w), resize(c, w))};
          case BinOp::Gt: return {b_.lt_word(resize(c, w), resize(a, w))};
          case BinOp::Ge: return {b_.le_word(resize(c, w), resize(a, w))};
        }
        break;
      }
      case ExprKind::Ternary: {
        const GateId cond = reduce_or(eval(*e.a));
        Word t = eval(*e.b);
        Word f = eval(*e.c);
        const size_t w = std::max(t.size(), f.size());
        return b_.mux_word(cond, resize(f, w), resize(t, w));
      }
      case ExprKind::Concat: {
        // Parts are MSB-first; the word is LSB-first.
        Word out;
        for (auto it = e.parts.rbegin(); it != e.parts.rend(); ++it) {
          const Word part = eval(**it);
          out.insert(out.end(), part.begin(), part.end());
        }
        return out;
      }
    }
    fatal("unreachable expression kind");
  }

  // ---- always blocks ----

  using Env = std::map<std::string, Word>;  // reg -> next-state word

  void process_stmt(const Stmt& s, Env& env) {
    switch (s.kind) {
      case StmtKind::Block:
        for (const StmtPtr& sub : s.stmts) process_stmt(*sub, env);
        return;
      case StmtKind::NonBlockingAssign: {
        const std::string& name = s.lhs->name;
        const auto dit = decls_.find(name);
        RFN_CHECK(dit != decls_.end() && dit->second.kind == NetDecl::Kind::Reg,
                  "line %d: non-blocking assign to non-reg '%s'", s.line, name.c_str());
        Word& next = env.at(name);
        int lo = 0, hi = dit->second.width - 1;
        if (s.lhs->kind == ExprKind::Index) lo = hi = s.lhs->index - dit->second.lsb;
        if (s.lhs->kind == ExprKind::Range) {
          lo = s.lhs->lsb - dit->second.lsb;
          hi = s.lhs->msb - dit->second.lsb;
        }
        RFN_CHECK(lo >= 0 && hi < dit->second.width, "line %d: assign out of range",
                  s.line);
        const Word rhs = resize(eval(*s.rhs), static_cast<size_t>(hi - lo + 1));
        for (int i = lo; i <= hi; ++i)
          next[static_cast<size_t>(i)] = rhs[static_cast<size_t>(i - lo)];
        return;
      }
      case StmtKind::If: {
        const GateId cond = reduce_or(eval(*s.cond));
        Env then_env = env;
        process_stmt(*s.then_branch, then_env);
        Env else_env = env;
        if (s.else_branch) process_stmt(*s.else_branch, else_env);
        merge_env(env, cond, else_env, then_env);
        return;
      }
      case StmtKind::Case: {
        // Lower to a priority cascade of label comparisons (labels are
        // mutually exclusive values, so priority order is irrelevant).
        const Word subject = eval(*s.subject);
        Env acc = env;  // semantics when no arm matches
        if (s.default_arm) process_stmt(*s.default_arm, acc);
        for (auto arm = s.arms.rbegin(); arm != s.arms.rend(); ++arm) {
          Env arm_env = env;
          process_stmt(*arm->body, arm_env);
          GateId match = b_.constant(false);
          for (uint64_t label : arm->labels) {
            RFN_CHECK(subject.size() >= 64 || label < (uint64_t{1} << subject.size()),
                      "line %d: case label %llu exceeds subject width %zu", s.line,
                      static_cast<unsigned long long>(label), subject.size());
            match = b_.or_(match, b_.eq_const(subject, label));
          }
          merge_env(acc, match, acc, arm_env);
        }
        env = std::move(acc);
        return;
      }
    }
  }

  /// env := cond ? when_true : when_false (per register bit).
  void merge_env(Env& env, GateId cond, const Env& when_false, const Env& when_true) {
    for (auto& [name, word] : env) {
      const Word& t = when_true.at(name);
      const Word& f = when_false.at(name);
      for (size_t i = 0; i < word.size(); ++i) word[i] = b_.mux(cond, f[i], t[i]);
    }
  }

  void process_always_blocks() {
    std::set<std::string> driven;
    for (const AlwaysBlock& ab : m_.always) {
      RFN_CHECK(decls_.count(ab.clock) > 0 &&
                    decls_.at(ab.clock).kind == NetDecl::Kind::Input,
                "line %d: clock '%s' is not an input", ab.line, ab.clock.c_str());
      // Hold semantics: a register keeps its value unless assigned.
      Env env;
      for (const auto& [name, d] : decls_)
        if (d.kind == NetDecl::Kind::Reg) env[name] = words_.at(name);
      process_stmt(*ab.body, env);
      for (const auto& [name, next] : env) {
        const Word& regs = words_.at(name);
        bool changed = false;
        for (size_t i = 0; i < regs.size(); ++i) changed |= next[i] != regs[i];
        if (!changed) continue;
        RFN_CHECK(driven.insert(name).second,
                  "register '%s' driven by multiple always blocks", name.c_str());
        b_.set_next_word(regs, next);
      }
    }
    // Registers never assigned anywhere: hold.
    for (const auto& [name, d] : decls_) {
      if (d.kind != NetDecl::Kind::Reg || driven.count(name) > 0) continue;
      b_.set_next_word(words_.at(name), words_.at(name));
    }
  }

  const Module& m_;
  const ModuleLibrary& lib_;
  NetBuilder& b_;
  std::string prefix_;
  std::map<std::string, NetDecl> decls_;
  std::map<std::string, Word> words_;
  std::set<std::string> clocks_;
  std::map<std::pair<std::string, int>, std::pair<const ContAssign*, int>> drivers_;
  std::map<std::string, std::pair<size_t, std::string>> instance_outputs_;
  std::set<std::pair<std::string, int>> resolving_;
  std::set<size_t> instance_busy_, instance_done_;
};

}  // namespace

ElaboratedDesign elaborate(const Module& top, const std::vector<Module>& library) {
  ModuleLibrary lib;
  for (const Module& m : library) lib[m.name] = &m;
  lib[top.name] = &top;

  NetBuilder builder;
  Elaborator root(top, lib, builder, "");
  root.run({});
  root.export_outputs();
  ElaboratedDesign out;
  out.module_name = top.name;
  out.netlist = builder.take();
  return out;
}

ElaboratedDesign elaborate_verilog(const std::string& source, const std::string& top) {
  std::vector<Module> modules = parse_modules(source);
  RFN_CHECK(!modules.empty(), "no modules in source");
  const Module* root = &modules.back();
  if (!top.empty()) {
    root = nullptr;
    for (const Module& m : modules)
      if (m.name == top) root = &m;
    RFN_CHECK(root != nullptr, "no module named '%s'", top.c_str());
  }
  return elaborate(*root, modules);
}

}  // namespace rfn::rtlv
