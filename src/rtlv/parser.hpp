#pragma once
// Recursive-descent parser for the Verilog subset (see lexer.hpp for scope).

#include <string>
#include <vector>

#include "rtlv/ast.hpp"

namespace rfn::rtlv {

/// Parses a single module. Aborts with line-numbered diagnostics on syntax
/// errors.
Module parse_module(const std::string& source);

/// Parses a source file containing one or more modules.
std::vector<Module> parse_modules(const std::string& source);

}  // namespace rfn::rtlv
