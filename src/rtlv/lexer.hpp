#pragma once
// Lexer for the Verilog subset accepted by the RTL frontend.
//
// The frontend exists because RFN consumes gate-level designs "obtained from
// RTL designs through logic synthesis" (paper Section 1): design sources are
// written in a synthesizable Verilog subset and elaborated straight into the
// netlist. Supported tokens: identifiers, sized/unsized numeric literals
// (binary/decimal/hex), operators, and the structural keywords.

#include <cstdint>
#include <string>
#include <vector>

namespace rfn::rtlv {

enum class Tok : uint8_t {
  Identifier, Number,
  KwModule, KwEndmodule, KwInput, KwOutput, KwWire, KwReg, KwAssign,
  KwAlways, KwPosedge, KwBegin, KwEnd, KwIf, KwElse,
  KwCase, KwEndcase, KwDefault,
  LParen, RParen, LBracket, RBracket, LBrace, RBrace,
  Semi, Comma, Colon, At, Question, Dot,
  Assign,        // =
  NonBlocking,   // <=  (in always context; also lexes as LeEq — parser decides)
  Plus, Minus, Tilde, Bang, Amp, Pipe, Caret, TildeCaret,
  AmpAmp, PipePipe, EqEq, BangEq, Lt, Gt, GtEq,
  Eof,
};

struct Token {
  Tok kind;
  std::string text;    // identifier text or raw number
  uint64_t value = 0;  // numeric value
  int width = -1;      // declared width of sized literals, -1 if unsized
  int line = 0;
};

/// Tokenizes `source`. Aborts with a diagnostic (file:line) on bad input.
std::vector<Token> lex(const std::string& source);

}  // namespace rfn::rtlv
