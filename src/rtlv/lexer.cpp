#include "rtlv/lexer.hpp"

#include <cctype>
#include <map>

#include "util/log.hpp"

namespace rfn::rtlv {

namespace {

const std::map<std::string, Tok>& keywords() {
  static const std::map<std::string, Tok> kw = {
      {"module", Tok::KwModule},   {"endmodule", Tok::KwEndmodule},
      {"input", Tok::KwInput},     {"output", Tok::KwOutput},
      {"wire", Tok::KwWire},       {"reg", Tok::KwReg},
      {"assign", Tok::KwAssign},   {"always", Tok::KwAlways},
      {"posedge", Tok::KwPosedge}, {"begin", Tok::KwBegin},
      {"end", Tok::KwEnd},         {"if", Tok::KwIf},
      {"else", Tok::KwElse},
      {"case", Tok::KwCase},   {"endcase", Tok::KwEndcase},
      {"default", Tok::KwDefault},
  };
  return kw;
}

uint64_t parse_digits(const std::string& digits, int base, int line) {
  uint64_t v = 0;
  for (char c : digits) {
    if (c == '_') continue;
    int d;
    if (c >= '0' && c <= '9')
      d = c - '0';
    else if (c >= 'a' && c <= 'f')
      d = 10 + c - 'a';
    else if (c >= 'A' && c <= 'F')
      d = 10 + c - 'A';
    else
      d = 99;
    RFN_CHECK(d < base, "line %d: bad digit '%c' for base %d", line, c, base);
    v = v * static_cast<uint64_t>(base) + static_cast<uint64_t>(d);
  }
  return v;
}

}  // namespace

std::vector<Token> lex(const std::string& src) {
  std::vector<Token> out;
  size_t i = 0;
  int line = 1;
  auto push = [&](Tok k, std::string text = "") {
    out.push_back({k, std::move(text), 0, -1, line});
  };

  while (i < src.size()) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < src.size()) {
      if (src[i + 1] == '/') {
        while (i < src.size() && src[i] != '\n') ++i;
        continue;
      }
      if (src[i + 1] == '*') {
        i += 2;
        while (i + 1 < src.size() && !(src[i] == '*' && src[i + 1] == '/')) {
          if (src[i] == '\n') ++line;
          ++i;
        }
        RFN_CHECK(i + 1 < src.size(), "line %d: unterminated comment", line);
        i += 2;
        continue;
      }
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < src.size() &&
             (std::isalnum(static_cast<unsigned char>(src[j])) || src[j] == '_'))
        ++j;
      const std::string word = src.substr(i, j - i);
      const auto it = keywords().find(word);
      if (it != keywords().end())
        push(it->second, word);
      else
        push(Tok::Identifier, word);
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '\'') {
      // [size]'[base]digits  or plain decimal.
      size_t j = i;
      std::string size_digits;
      while (j < src.size() && std::isdigit(static_cast<unsigned char>(src[j])))
        size_digits += src[j++];
      Token t{Tok::Number, "", 0, -1, line};
      if (j < src.size() && src[j] == '\'') {
        ++j;
        RFN_CHECK(j < src.size(), "line %d: truncated literal", line);
        const char base_c = static_cast<char>(std::tolower(src[j++]));
        const int base = base_c == 'b' ? 2 : (base_c == 'd' ? 10 : (base_c == 'h' ? 16 : 0));
        RFN_CHECK(base != 0, "line %d: bad literal base '%c'", line, base_c);
        std::string digits;
        while (j < src.size() && (std::isalnum(static_cast<unsigned char>(src[j])) ||
                                  src[j] == '_'))
          digits += src[j++];
        t.value = parse_digits(digits, base, line);
        t.width = size_digits.empty() ? -1 : std::stoi(size_digits);
        t.text = size_digits + "'" + base_c + digits;
      } else {
        t.value = parse_digits(size_digits, 10, line);
        t.text = size_digits;
      }
      out.push_back(t);
      i = j;
      continue;
    }
    auto two = [&](char a, char d) {
      return c == a && i + 1 < src.size() && src[i + 1] == d;
    };
    if (two('<', '=')) { push(Tok::NonBlocking, "<="); i += 2; continue; }
    if (two('=', '=')) { push(Tok::EqEq, "=="); i += 2; continue; }
    if (two('!', '=')) { push(Tok::BangEq, "!="); i += 2; continue; }
    if (two('&', '&')) { push(Tok::AmpAmp, "&&"); i += 2; continue; }
    if (two('|', '|')) { push(Tok::PipePipe, "||"); i += 2; continue; }
    if (two('>', '=')) { push(Tok::GtEq, ">="); i += 2; continue; }
    if (two('~', '^')) { push(Tok::TildeCaret, "~^"); i += 2; continue; }
    if (two('^', '~')) { push(Tok::TildeCaret, "^~"); i += 2; continue; }
    switch (c) {
      case '(': push(Tok::LParen); break;
      case ')': push(Tok::RParen); break;
      case '[': push(Tok::LBracket); break;
      case ']': push(Tok::RBracket); break;
      case '{': push(Tok::LBrace); break;
      case '}': push(Tok::RBrace); break;
      case ';': push(Tok::Semi); break;
      case ',': push(Tok::Comma); break;
      case ':': push(Tok::Colon); break;
      case '@': push(Tok::At); break;
      case '.': push(Tok::Dot); break;
      case '?': push(Tok::Question); break;
      case '=': push(Tok::Assign); break;
      case '+': push(Tok::Plus); break;
      case '-': push(Tok::Minus); break;
      case '~': push(Tok::Tilde); break;
      case '!': push(Tok::Bang); break;
      case '&': push(Tok::Amp); break;
      case '|': push(Tok::Pipe); break;
      case '^': push(Tok::Caret); break;
      case '<': push(Tok::Lt); break;
      case '>': push(Tok::Gt); break;
      default:
        fatal(detail::format("line %d: unexpected character '%c'", line, c));
    }
    ++i;
  }
  push(Tok::Eof);
  return out;
}

}  // namespace rfn::rtlv
