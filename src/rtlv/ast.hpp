#pragma once
// AST for the synthesizable Verilog subset.

#include <memory>
#include <string>
#include <vector>

namespace rfn::rtlv {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind {
  Const,      // value/width
  Ident,      // name
  Index,      // name[index]
  Range,      // name[msb:lsb]
  Unary,      // op operand        (~ ! & | ^ -)
  Binary,     // lhs op rhs
  Ternary,    // cond ? then : else
  Concat,     // {a, b, ...} MSB-first
};

enum class UnOp { Not, LogNot, RedAnd, RedOr, RedXor, Neg };
enum class BinOp {
  And, Or, Xor, Xnor, LogAnd, LogOr,
  Add, Sub, Eq, Ne, Lt, Le, Gt, Ge,
};

struct Expr {
  ExprKind kind{};
  // Const
  uint64_t value = 0;
  int width = -1;  // -1: unsized
  // Ident / Index / Range
  std::string name;
  int index = 0;
  int msb = 0, lsb = 0;
  // Unary / Binary / Ternary / Concat
  UnOp un_op{};
  BinOp bin_op{};
  ExprPtr a, b, c;
  std::vector<ExprPtr> parts;
  int line = 0;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind { NonBlockingAssign, If, Block, Case };

struct Stmt {
  StmtKind kind{};
  // NonBlockingAssign: lhs (Ident/Index/Range) <= rhs
  ExprPtr lhs, rhs;
  // If
  ExprPtr cond;
  StmtPtr then_branch, else_branch;  // else may be null
  // Block
  std::vector<StmtPtr> stmts;
  // Case: subject, one arm per case item (possibly several labels each),
  // optional default arm.
  ExprPtr subject;
  struct CaseArm {
    std::vector<uint64_t> labels;
    StmtPtr body;
  };
  std::vector<CaseArm> arms;
  StmtPtr default_arm;  // may be null
  int line = 0;
};

struct NetDecl {
  enum class Kind { Input, Output, Wire, Reg } kind{};
  std::string name;
  int msb = 0, lsb = 0;    // scalar: msb == lsb == 0 and width == 1
  int width = 1;
  bool has_init = false;
  uint64_t init = 0;       // declaration initializer for regs
  int line = 0;
};

struct ContAssign {
  ExprPtr lhs;  // Ident/Index/Range
  ExprPtr rhs;
  int line = 0;
};

/// Module instantiation: `child_module inst_name (.port(expr), ...);` or
/// positional `child_module inst_name (expr, ...);`.
struct Instance {
  std::string module_name;
  std::string instance_name;
  /// Named connections; for positional form, names are empty and order
  /// follows the child's port list.
  std::vector<std::pair<std::string, ExprPtr>> connections;
  bool positional = false;
  int line = 0;
};

struct AlwaysBlock {
  std::string clock;  // @(posedge clock)
  StmtPtr body;
  int line = 0;
};

struct Module {
  std::string name;
  std::vector<std::string> ports;
  std::vector<NetDecl> decls;
  std::vector<ContAssign> assigns;
  std::vector<AlwaysBlock> always;
  std::vector<Instance> instances;
};

}  // namespace rfn::rtlv
