#include "rtlv/parser.hpp"

#include "rtlv/lexer.hpp"
#include "util/log.hpp"

namespace rfn::rtlv {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  Module module() {
    Module m;
    expect(Tok::KwModule);
    m.name = expect(Tok::Identifier).text;
    expect(Tok::LParen);
    if (!at(Tok::RParen)) {
      m.ports.push_back(expect(Tok::Identifier).text);
      while (accept(Tok::Comma)) m.ports.push_back(expect(Tok::Identifier).text);
    }
    expect(Tok::RParen);
    expect(Tok::Semi);

    while (!at(Tok::KwEndmodule)) {
      if (at(Tok::KwInput) || at(Tok::KwOutput) || at(Tok::KwWire) || at(Tok::KwReg)) {
        decl(m);
      } else if (accept(Tok::KwAssign)) {
        ContAssign ca;
        ca.line = cur().line;
        ca.lhs = lvalue();
        expect(Tok::Assign);
        ca.rhs = expr();
        expect(Tok::Semi);
        m.assigns.push_back(std::move(ca));
      } else if (accept(Tok::KwAlways)) {
        AlwaysBlock ab;
        ab.line = cur().line;
        expect(Tok::At);
        expect(Tok::LParen);
        expect(Tok::KwPosedge);
        ab.clock = expect(Tok::Identifier).text;
        expect(Tok::RParen);
        ab.body = stmt();
        m.always.push_back(std::move(ab));
      } else if (at(Tok::Identifier)) {
        m.instances.push_back(instance());
      } else {
        fatal(detail::format("line %d: unexpected token '%s'", cur().line,
                             cur().text.c_str()));
      }
    }
    expect(Tok::KwEndmodule);
    return m;
  }

 public:
  bool at_eof() const { return toks_[pos_].kind == Tok::Eof; }

 private:
  const Token& cur() const { return toks_[pos_]; }
  bool at(Tok k) const { return cur().kind == k; }
  bool accept(Tok k) {
    if (!at(k)) return false;
    ++pos_;
    return true;
  }
  Token expect(Tok k) {
    RFN_CHECK(at(k), "line %d: unexpected token '%s'", cur().line, cur().text.c_str());
    return toks_[pos_++];
  }

  void decl(Module& m) {
    NetDecl d;
    d.line = cur().line;
    if (accept(Tok::KwInput)) {
      d.kind = NetDecl::Kind::Input;
      accept(Tok::KwWire);  // "input wire"
    } else if (accept(Tok::KwOutput)) {
      // "output reg x" declares a register that is also a port; the
      // elaborator exports every output port regardless of kind.
      d.kind = accept(Tok::KwReg) ? NetDecl::Kind::Reg : NetDecl::Kind::Output;
      accept(Tok::KwWire);
    } else if (accept(Tok::KwWire)) {
      d.kind = NetDecl::Kind::Wire;
    } else {
      expect(Tok::KwReg);
      d.kind = NetDecl::Kind::Reg;
    }
    if (accept(Tok::LBracket)) {
      d.msb = static_cast<int>(expect(Tok::Number).value);
      expect(Tok::Colon);
      d.lsb = static_cast<int>(expect(Tok::Number).value);
      expect(Tok::RBracket);
      RFN_CHECK(d.msb >= d.lsb, "line %d: reversed range", d.line);
    }
    d.width = d.msb - d.lsb + 1;
    // One or more comma-separated names, each with an optional initializer.
    for (;;) {
      NetDecl item = d;
      item.name = expect(Tok::Identifier).text;
      if (accept(Tok::Assign)) {
        RFN_CHECK(item.kind == NetDecl::Kind::Reg,
                  "line %d: initializer on non-reg '%s'", item.line, item.name.c_str());
        item.has_init = true;
        item.init = expect(Tok::Number).value;
      }
      m.decls.push_back(std::move(item));
      if (!accept(Tok::Comma)) break;
    }
    expect(Tok::Semi);
  }

  Instance instance() {
    Instance inst;
    inst.line = cur().line;
    inst.module_name = expect(Tok::Identifier).text;
    inst.instance_name = expect(Tok::Identifier).text;
    expect(Tok::LParen);
    if (at(Tok::Dot)) {
      while (accept(Tok::Dot)) {
        const std::string port = expect(Tok::Identifier).text;
        expect(Tok::LParen);
        inst.connections.emplace_back(port, expr());
        expect(Tok::RParen);
        if (!accept(Tok::Comma)) break;
      }
    } else if (!at(Tok::RParen)) {
      inst.positional = true;
      inst.connections.emplace_back("", expr());
      while (accept(Tok::Comma)) inst.connections.emplace_back("", expr());
    }
    expect(Tok::RParen);
    expect(Tok::Semi);
    return inst;
  }

  StmtPtr stmt() {
    auto s = std::make_unique<Stmt>();
    s->line = cur().line;
    if (accept(Tok::KwBegin)) {
      s->kind = StmtKind::Block;
      while (!accept(Tok::KwEnd)) s->stmts.push_back(stmt());
      return s;
    }
    if (accept(Tok::KwCase)) {
      s->kind = StmtKind::Case;
      expect(Tok::LParen);
      s->subject = expr();
      expect(Tok::RParen);
      while (!at(Tok::KwEndcase)) {
        if (accept(Tok::KwDefault)) {
          expect(Tok::Colon);
          RFN_CHECK(s->default_arm == nullptr, "line %d: duplicate default",
                    cur().line);
          s->default_arm = stmt();
          continue;
        }
        Stmt::CaseArm arm;
        arm.labels.push_back(expect(Tok::Number).value);
        while (accept(Tok::Comma)) arm.labels.push_back(expect(Tok::Number).value);
        expect(Tok::Colon);
        arm.body = stmt();
        s->arms.push_back(std::move(arm));
      }
      expect(Tok::KwEndcase);
      return s;
    }
    if (accept(Tok::KwIf)) {
      s->kind = StmtKind::If;
      expect(Tok::LParen);
      s->cond = expr();
      expect(Tok::RParen);
      s->then_branch = stmt();
      if (accept(Tok::KwElse)) s->else_branch = stmt();
      return s;
    }
    s->kind = StmtKind::NonBlockingAssign;
    s->lhs = lvalue();
    expect(Tok::NonBlocking);
    s->rhs = expr();
    expect(Tok::Semi);
    return s;
  }

  ExprPtr lvalue() {
    auto e = std::make_unique<Expr>();
    e->line = cur().line;
    e->name = expect(Tok::Identifier).text;
    if (accept(Tok::LBracket)) {
      const int first = static_cast<int>(expect(Tok::Number).value);
      if (accept(Tok::Colon)) {
        e->kind = ExprKind::Range;
        e->msb = first;
        e->lsb = static_cast<int>(expect(Tok::Number).value);
      } else {
        e->kind = ExprKind::Index;
        e->index = first;
      }
      expect(Tok::RBracket);
    } else {
      e->kind = ExprKind::Ident;
    }
    return e;
  }

  // Precedence climbing: ?: lowest, then || && | ^ & ==/!= relational +-.
  ExprPtr expr() { return ternary(); }

  ExprPtr ternary() {
    ExprPtr cond = logic_or();
    if (!accept(Tok::Question)) return cond;
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Ternary;
    e->line = cond->line;
    e->a = std::move(cond);
    e->b = expr();
    expect(Tok::Colon);
    e->c = expr();
    return e;
  }

  ExprPtr binary_chain(ExprPtr (Parser::*next)(),
                       std::initializer_list<std::pair<Tok, BinOp>> ops) {
    ExprPtr lhs = (this->*next)();
    for (;;) {
      bool matched = false;
      for (const auto& [tok, op] : ops) {
        if (at(tok)) {
          ++pos_;
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::Binary;
          e->bin_op = op;
          e->line = lhs->line;
          e->a = std::move(lhs);
          e->b = (this->*next)();
          lhs = std::move(e);
          matched = true;
          break;
        }
      }
      if (!matched) return lhs;
    }
  }

  ExprPtr logic_or() { return binary_chain(&Parser::logic_and, {{Tok::PipePipe, BinOp::LogOr}}); }
  ExprPtr logic_and() { return binary_chain(&Parser::bit_or, {{Tok::AmpAmp, BinOp::LogAnd}}); }
  ExprPtr bit_or() { return binary_chain(&Parser::bit_xor, {{Tok::Pipe, BinOp::Or}}); }
  ExprPtr bit_xor() {
    return binary_chain(&Parser::bit_and,
                        {{Tok::Caret, BinOp::Xor}, {Tok::TildeCaret, BinOp::Xnor}});
  }
  ExprPtr bit_and() { return binary_chain(&Parser::equality, {{Tok::Amp, BinOp::And}}); }
  ExprPtr equality() {
    return binary_chain(&Parser::relational,
                        {{Tok::EqEq, BinOp::Eq}, {Tok::BangEq, BinOp::Ne}});
  }
  ExprPtr relational() {
    return binary_chain(&Parser::additive, {{Tok::Lt, BinOp::Lt},
                                            {Tok::NonBlocking, BinOp::Le},
                                            {Tok::Gt, BinOp::Gt},
                                            {Tok::GtEq, BinOp::Ge}});
  }
  ExprPtr additive() {
    return binary_chain(&Parser::unary,
                        {{Tok::Plus, BinOp::Add}, {Tok::Minus, BinOp::Sub}});
  }

  ExprPtr unary() {
    auto make_un = [&](UnOp op) {
      ++pos_;
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::Unary;
      e->un_op = op;
      e->line = cur().line;
      e->a = unary();
      return e;
    };
    if (at(Tok::Tilde)) return make_un(UnOp::Not);
    if (at(Tok::Bang)) return make_un(UnOp::LogNot);
    if (at(Tok::Amp)) return make_un(UnOp::RedAnd);
    if (at(Tok::Pipe)) return make_un(UnOp::RedOr);
    if (at(Tok::Caret)) return make_un(UnOp::RedXor);
    if (at(Tok::Minus)) return make_un(UnOp::Neg);
    return primary();
  }

  ExprPtr primary() {
    auto e = std::make_unique<Expr>();
    e->line = cur().line;
    if (accept(Tok::LParen)) {
      ExprPtr inner = expr();
      expect(Tok::RParen);
      return inner;
    }
    if (at(Tok::Number)) {
      const Token t = expect(Tok::Number);
      e->kind = ExprKind::Const;
      e->value = t.value;
      e->width = t.width;
      return e;
    }
    if (accept(Tok::LBrace)) {
      e->kind = ExprKind::Concat;
      e->parts.push_back(expr());
      while (accept(Tok::Comma)) e->parts.push_back(expr());
      expect(Tok::RBrace);
      return e;
    }
    e->name = expect(Tok::Identifier).text;
    if (accept(Tok::LBracket)) {
      const int first = static_cast<int>(expect(Tok::Number).value);
      if (accept(Tok::Colon)) {
        e->kind = ExprKind::Range;
        e->msb = first;
        e->lsb = static_cast<int>(expect(Tok::Number).value);
      } else {
        e->kind = ExprKind::Index;
        e->index = first;
      }
      expect(Tok::RBracket);
    } else {
      e->kind = ExprKind::Ident;
    }
    return e;
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
};

}  // namespace

Module parse_module(const std::string& source) {
  Parser p(lex(source));
  return p.module();
}

std::vector<Module> parse_modules(const std::string& source) {
  std::vector<Module> modules;
  std::vector<Token> toks = lex(source);
  // Split at module boundaries by re-lexing? Simpler: one Parser that loops.
  Parser p(std::move(toks));
  while (!p.at_eof()) modules.push_back(p.module());
  return modules;
}

}  // namespace rfn::rtlv
