#pragma once
// WarmStateCache: cross-request warm verification state, keyed by design
// hash.
//
// The server's whole reason to stay resident is that the second request on
// a design should not start cold: the ReuseCache a VerifySession warms up —
// pooled incremental SAT instances with their learned clauses, the final
// BDD variable order, memoized subcircuit extractions, crucial-register
// hints — all key off one Netlist instance, so keeping that instance (and
// its cache) alive across requests is what turns a request stream into an
// incremental workload.
//
// Entries are keyed by design_hash_hex (netlist/analysis): two requests
// naming the same design — by path, builtin:, or inline text — land on the
// same entry because the hash is over the elaborated netlist, not the
// spelling. The cost is that every request elaborates its design before
// lookup; on a hit the fresh load is discarded and the CACHED instance runs
// the session, because the SatBmcPool inside the entry references that
// instance by address.
//
// Leases serialize runs per design (ReuseCache is single-threaded by
// design): a second request on a busy design blocks until the first
// releases. Distinct designs run concurrently.
//
// Byte budget: each entry is charged its ReuseCache::approx_bytes() —
// solver arenas byte-exact via the util/prof heap accounting behind
// sat::Solver::heap_bytes() — plus a structural netlist estimate. When the
// total exceeds the budget, least-recently-used idle entries are evicted;
// entries with live or waiting leases are never evicted.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "api/load.hpp"
#include "core/session.hpp"

namespace rfn::serve {

struct WarmStats {
  size_t hits = 0;       // acquire() found the design's entry
  size_t misses = 0;     // acquire() created it
  size_t evictions = 0;  // entries dropped by the byte budget
  size_t entries = 0;    // live entries
  int64_t bytes = 0;     // charged bytes across live entries
};

class WarmStateCache {
  struct Entry;

 public:
  /// `byte_budget` <= 0 disables eviction (unbounded cache).
  explicit WarmStateCache(int64_t byte_budget) : budget_(byte_budget) {}

  /// A held entry: the cached design instance plus its warm state. Valid
  /// from acquire() until release(); the warm_* fields are the pre-run
  /// snapshot a response reports.
  struct Lease {
    const api::LoadedDesign* design = nullptr;
    ReuseCache* cache = nullptr;
    /// The entry existed before this acquire (a cache hit).
    bool warm = false;
    /// Pre-run reusable state: a saved BDD variable order, and how many
    /// pooled incremental SAT instances the entry carries.
    bool order_warm = false;
    size_t sat_pool_entries = 0;

   private:
    friend class WarmStateCache;
    Entry* entry_ = nullptr;
  };

  /// Exchanges a freshly loaded design for a lease on its warm entry: the
  /// cached instance on a hit (`fresh` is discarded), `fresh` adopted on a
  /// miss. Blocks while another lease on the same design is live.
  Lease acquire(api::LoadedDesign fresh);

  /// Ends the lease: recharges the entry's bytes, bumps its recency, and
  /// evicts LRU idle entries down to the byte budget. The lease is dead
  /// afterwards.
  void release(Lease& lease);

  WarmStats stats() const;

 private:
  struct Entry {
    api::LoadedDesign design;
    ReuseCache cache;
    /// Serializes leases on this design (ReuseCache is single-threaded).
    std::mutex run_mu;
    int64_t bytes = 0;
    uint64_t last_used = 0;
    /// Live + waiting leases; eviction skips any entry with uses > 0.
    int uses = 0;
  };

  int64_t entry_bytes(const Entry& e) const;
  void evict_lru_locked();

  const int64_t budget_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Entry>> map_;
  uint64_t tick_ = 0;
  size_t hits_ = 0, misses_ = 0, evictions_ = 0;
  int64_t bytes_ = 0;
};

}  // namespace rfn::serve
