#include "serve/queue.hpp"

#include <cstdio>
#include <limits>
#include <utility>

namespace rfn::serve {

double request_demand_ms(const api::VerifyRequest& req, double default_ms) {
  if (req.options.budget_ms > 0) return req.options.budget_ms;
  if (req.options.time_limit_s > 0) return req.options.time_limit_s * 1000.0;
  return default_ms;
}

bool FairQueue::try_push(Job job, std::string* reject_reason,
                         std::string* detail) {
  std::lock_guard<std::mutex> lk(mu_);
  char buf[160];
  if (outstanding_jobs_ >= limits_.queue_capacity) {
    *reject_reason = "queue-full";
    std::snprintf(buf, sizeof(buf), "%zu jobs outstanding (capacity %zu)",
                  outstanding_jobs_, limits_.queue_capacity);
    *detail = buf;
    return false;
  }
  if (limits_.time_window_ms > 0 &&
      outstanding_ms_ + job.demand_ms > limits_.time_window_ms) {
    *reject_reason = "time-oversubscribed";
    std::snprintf(buf, sizeof(buf),
                  "%.0f ms outstanding + %.0f ms demanded > %.0f ms window",
                  outstanding_ms_, job.demand_ms, limits_.time_window_ms);
    *detail = buf;
    return false;
  }
  if (limits_.mem_window_mb > 0 &&
      outstanding_mem_mb_ + job.demand_mem_mb > limits_.mem_window_mb) {
    *reject_reason = "mem-oversubscribed";
    std::snprintf(buf, sizeof(buf),
                  "%lld MB outstanding + %lld MB demanded > %lld MB window",
                  static_cast<long long>(outstanding_mem_mb_),
                  static_cast<long long>(job.demand_mem_mb),
                  static_cast<long long>(limits_.mem_window_mb));
    *detail = buf;
    return false;
  }
  if (limits_.bdd_node_window > 0 &&
      outstanding_bdd_nodes_ + job.demand_bdd_nodes > limits_.bdd_node_window) {
    *reject_reason = "bdd-oversubscribed";
    std::snprintf(
        buf, sizeof(buf),
        "%lld nodes outstanding + %lld nodes demanded > %lld node window",
        static_cast<long long>(outstanding_bdd_nodes_),
        static_cast<long long>(job.demand_bdd_nodes),
        static_cast<long long>(limits_.bdd_node_window));
    *detail = buf;
    return false;
  }
  ++outstanding_jobs_;
  outstanding_ms_ += job.demand_ms;
  outstanding_mem_mb_ += job.demand_mem_mb;
  outstanding_bdd_nodes_ += job.demand_bdd_nodes;
  Tenant& t = tenants_[job.tenant];
  t.jobs.push_back(std::move(job));
  t.arrivals.push_back(++arrival_tick_);
  ++pending_;
  return true;
}

bool FairQueue::pop_fairest(Job* out) {
  std::lock_guard<std::mutex> lk(mu_);
  Tenant* best = nullptr;
  for (auto& [name, t] : tenants_) {
    if (t.jobs.empty()) continue;
    if (best == nullptr || t.started < best->started ||
        (t.started == best->started &&
         t.arrivals.front() < best->arrivals.front())) {
      best = &t;
    }
  }
  if (best == nullptr) return false;
  *out = std::move(best->jobs.front());
  best->jobs.pop_front();
  best->arrivals.pop_front();
  ++best->started;
  ++best->running;
  --pending_;
  return true;
}

void FairQueue::finish(const Job& job) {
  std::lock_guard<std::mutex> lk(mu_);
  --outstanding_jobs_;
  outstanding_ms_ -= job.demand_ms;
  outstanding_mem_mb_ -= job.demand_mem_mb;
  outstanding_bdd_nodes_ -= job.demand_bdd_nodes;
  // Drop fully idle tenant records: the name is client-controlled, so
  // keeping every name ever seen would grow without bound.
  auto it = tenants_.find(job.tenant);
  if (it == tenants_.end()) return;
  Tenant& t = it->second;
  if (t.running > 0) --t.running;
  if (t.jobs.empty() && t.running == 0) tenants_.erase(it);
}

size_t FairQueue::pending() const {
  std::lock_guard<std::mutex> lk(mu_);
  return pending_;
}

size_t FairQueue::tenant_records() const {
  std::lock_guard<std::mutex> lk(mu_);
  return tenants_.size();
}

}  // namespace rfn::serve
