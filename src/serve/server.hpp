#pragma once
// rfn_serve's engine room: a long-lived verification server on the rfn::api
// surface.
//
// Protocol (newline-delimited JSON over a Unix or loopback TCP socket):
//
//   client → server   one rfn-req-v1 document per line. Besides
//                     "type":"verify" the server answers two control types:
//                     "ping" (readiness probe) and "shutdown" (graceful
//                     stop; the response is written before the server winds
//                     down).
//   server → client   for a verify: zero or more rfn-trace-v2 records
//                     streamed AS PRODUCED (property records in completion
//                     order, then certificate records and the batch
//                     summary), then exactly one rfn-resp-v1 line. For
//                     control types and rejections: the single rfn-resp-v1
//                     line only.
//
// A connection handles one request at a time (the next line is read after
// the previous response), which is what keeps the streamed record
// interleaving unambiguous without per-record request tags. Concurrency
// lives across connections: admitted jobs go through a FairQueue and are
// drained by a util/executor worker pool, so two tenants on two connections
// share the machine fair-share while each sees an ordered stream.
//
// Request lifecycle: the connection thread parses (strict rfn-req-v1;
// "bad-request" on any codec error) and runs admission on the DECLARED
// demands (FairQueue's named rejects) → enqueue + drain token. Loading the
// design — up to 64 MB of inline Verilog/AIGER to parse and elaborate —
// happens on the worker, after admission, so a rejected or flooding
// request costs microseconds, never an elaboration ("load-failed" is
// written by the worker). The worker then exchanges the fresh load for a
// WarmStateCache lease — the second request on a design hash runs on the
// cached netlist instance with its warm SAT pool / BDD order / subcircuit
// memo — runs api::run_verify with a streaming sink, stamps the warm-cache
// effects into the response, and writes the final line.
//
// Each request's run_verify executes under a MetricsScope binding a
// registry the request owns (the binding propagates to executor workers and
// the watchdog), so the batch-summary's metrics block is request-relative
// even with concurrent requests in flight — the same single-run reading the
// CLI gives. Server-level metrics (admission queue, warm cache) are
// recorded outside the scope and stay process-cumulative on purpose.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/queue.hpp"
#include "serve/warm_cache.hpp"
#include "util/executor.hpp"

namespace rfn::serve {

struct ServerOptions {
  /// Unix-domain socket path; empty disables the Unix listener. A stale
  /// socket file is unlinked before bind.
  std::string unix_socket;
  /// Loopback TCP port; -1 disables the TCP listener, 0 binds an ephemeral
  /// port (read it back with Server::tcp_port()).
  int tcp_port = -1;
  /// Executor workers draining the queue (clamped to >= 1: with zero the
  /// executor runs jobs inline inside submit(), which would deadlock the
  /// connection thread against its own future).
  size_t workers = 1;
  AdmissionLimits admission;
  /// Warm-state byte budget (<= 0: unbounded); warm_enabled false serves
  /// every request cold.
  int64_t warm_budget_bytes = 256ll << 20;
  bool warm_enabled = true;
  /// Longest accepted request line (inline designs included).
  size_t max_line_bytes = 64u << 20;
};

class Server {
 public:
  explicit Server(ServerOptions opt);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listeners and spawns the accept threads. False with a
  /// one-line diagnostic on bind failure.
  bool start(std::string* error);

  /// Blocks until a shutdown request (or stop()) arrives.
  void wait();

  /// Stops listening, unblocks every connection, joins all threads. Queued
  /// jobs still drain (their responses go to already-shut sockets).
  /// Idempotent.
  void stop();

  /// Actual TCP port after start() (ephemeral binds resolve here).
  int tcp_port() const { return tcp_port_; }

  WarmStats warm_stats() const { return warm_.stats(); }
  size_t served() const { return served_.load(); }

 private:
  struct Conn {
    int fd = -1;
    /// Guards fd writes and the close; the reader thread recvs unlocked
    /// (it is the only closer, and only after its last recv).
    std::mutex mu;
    /// The serving thread, joined by reap_connections() or stop().
    std::thread thread;
    /// Set by the serving thread as its last act, making the Conn reapable.
    std::atomic<bool> done{false};
  };

  void accept_loop(int listen_fd);
  /// Joins finished connection threads and drops their Conns; called from
  /// the accept loops so a long-lived daemon does not accumulate one thread
  /// handle per connection ever served.
  void reap_connections();
  void connection_loop(std::shared_ptr<Conn> conn);
  /// One request line, already parsed. Writes every reply itself.
  void handle_request(Conn& conn, const json::Value& doc);
  void process(Conn& conn, const api::VerifyRequest& req,
               api::LoadedDesign design);
  void write_line(Conn& conn, const std::string& line);
  void request_stop();

  ServerOptions opt_;
  WarmStateCache warm_;
  FairQueue queue_;
  std::unique_ptr<Executor> exec_;

  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int tcp_port_ = -1;

  std::atomic<bool> stopping_{false};
  std::atomic<size_t> served_{0};
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  bool stopped_ = false;

  std::vector<std::thread> accept_threads_;
  std::mutex conns_mu_;
  /// Live (unreaped) connections; each owns its serving thread.
  std::vector<std::shared_ptr<Conn>> conns_;
};

}  // namespace rfn::serve
