#pragma once
// FairQueue: bounded admission + per-tenant fair-share scheduling for
// rfn_serve.
//
// Admission is decided at enqueue time, before any engine work, so an
// oversubscribed server answers in microseconds instead of queueing a
// request it cannot honor. A request is rejected with a NAMED reason —
// "queue-full", "time-oversubscribed", "mem-oversubscribed",
// "bdd-oversubscribed" — computed from the same watchdog budget vocabulary
// the engines enforce (budget-ms / budget-mem-mb / budget-bdd-nodes): the
// queue sums the declared demands of every admitted-but-unfinished job and
// refuses to let the total cross the configured window.
//
// Scheduling is fair-share by tenant: pop_fairest() serves the pending
// tenant with the fewest jobs started so far (FIFO within a tenant, arrival
// order on ties), so a tenant that floods the queue cannot starve one that
// sends a single request. The queue does not run jobs — rfn_serve drains it
// from util/executor workers, one drain token per admitted job.
//
// Tenant names are client-controlled, so a tenant's record is erased once
// it has no queued and no running jobs — the map is bounded by the
// admission capacity, not by the number of distinct names ever seen. The
// cost is that a fully idle tenant's fair-share history resets.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "api/api.hpp"

namespace rfn::serve {

/// Admission windows. Any limit <= 0 disables that check.
struct AdmissionLimits {
  /// Bound on admitted-but-unfinished jobs ("queue-full" beyond it).
  size_t queue_capacity = 64;
  /// Wall-time window: sum of outstanding per-request time demands.
  double time_window_ms = -1.0;
  /// Memory window: sum of outstanding budget-mem-mb declarations.
  int64_t mem_window_mb = -1;
  /// BDD-node window: sum of outstanding budget-bdd-nodes declarations.
  int64_t bdd_node_window = -1;
  /// Time demand assumed for a request that declares no budget-ms and no
  /// time-limit (an unbounded request must still cost something against the
  /// window, or the window checks nothing).
  double default_demand_ms = 300000.0;
};

/// One admitted job: the scheduling key, the admission demands it holds
/// until finish(), and the closure that runs it on a worker.
struct Job {
  std::string tenant;
  double demand_ms = 0.0;
  int64_t demand_mem_mb = 0;
  int64_t demand_bdd_nodes = 0;
  std::function<void()> run;
};

/// A request's declared wall-time demand: budget-ms, else time-limit, else
/// `default_ms`.
double request_demand_ms(const api::VerifyRequest& req, double default_ms);

class FairQueue {
 public:
  explicit FairQueue(AdmissionLimits limits) : limits_(limits) {}

  /// Admits or rejects `job`. On rejection returns false with the named
  /// reason in `reject_reason` and a human detail in `detail`.
  bool try_push(Job job, std::string* reject_reason, std::string* detail);

  /// Pops the next job fair-share (see file comment). False when empty.
  bool pop_fairest(Job* out);

  /// Releases a popped job's admission demands. Call exactly once per
  /// successful pop, after the job ran.
  void finish(const Job& job);

  /// Admitted-but-unstarted jobs.
  size_t pending() const;

  /// Live tenant records (those with queued or running jobs) — bounded by
  /// the admission capacity, not by distinct names ever seen.
  size_t tenant_records() const;

 private:
  struct Tenant {
    std::deque<Job> jobs;
    /// Arrival tick of each queued job (parallel to `jobs`), for tie-breaks.
    std::deque<uint64_t> arrivals;
    /// Jobs handed to workers while this record has existed — the
    /// fair-share charge.
    size_t started = 0;
    /// Popped-but-unfinished jobs; the record lives while this is nonzero.
    size_t running = 0;
  };

  const AdmissionLimits limits_;
  mutable std::mutex mu_;
  std::map<std::string, Tenant> tenants_;
  size_t pending_ = 0;
  /// Admitted-but-unfinished totals, per admission dimension.
  size_t outstanding_jobs_ = 0;
  double outstanding_ms_ = 0.0;
  int64_t outstanding_mem_mb_ = 0;
  int64_t outstanding_bdd_nodes_ = 0;
  uint64_t arrival_tick_ = 0;
};

}  // namespace rfn::serve
