#include "serve/warm_cache.hpp"

#include <utility>

namespace rfn::serve {
namespace {

// Structural netlist footprint: gates x a nominal per-gate cost (fanin
// vector, name-map share). Same convention as SubcircuitMemo::approx_bytes.
constexpr int64_t kPerGateBytes = 48;

}  // namespace

int64_t WarmStateCache::entry_bytes(const Entry& e) const {
  return static_cast<int64_t>(e.design.netlist.size()) * kPerGateBytes +
         e.cache.approx_bytes();
}

WarmStateCache::Lease WarmStateCache::acquire(api::LoadedDesign fresh) {
  Entry* e = nullptr;
  bool warm = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = map_.find(fresh.hash_hex);
    if (it != map_.end()) {
      ++hits_;
      warm = true;
      e = it->second.get();
    } else {
      ++misses_;
      auto entry = std::make_unique<Entry>();
      entry->design = std::move(fresh);
      e = entry.get();
      e->bytes = entry_bytes(*e);
      bytes_ += e->bytes;
      map_.emplace(e->design.hash_hex, std::move(entry));
    }
    e->last_used = ++tick_;
    ++e->uses;  // counted before waiting, so eviction never drops a waiter
  }
  e->run_mu.lock();
  Lease lease;
  lease.design = &e->design;
  lease.cache = &e->cache;
  lease.warm = warm;
  lease.order_warm = !e->cache.order.tokens.empty();
  lease.sat_pool_entries = e->cache.sat_bmc.size();
  lease.entry_ = e;
  return lease;
}

void WarmStateCache::release(Lease& lease) {
  Entry* e = lease.entry_;
  if (e == nullptr) return;
  lease = Lease{};
  // The recharge walks the entry's ReuseCache containers (SatBmcPool,
  // SubcircuitMemo), so it must happen while run_mu still serializes the
  // entry: the moment run_mu drops, a waiter in acquire() may start a run
  // that mutates those same containers. Taking mu_ while holding run_mu is
  // deadlock-free because acquire() never holds mu_ while waiting on
  // run_mu.
  const int64_t now = entry_bytes(*e);
  std::lock_guard<std::mutex> lk(mu_);
  bytes_ += now - e->bytes;
  e->bytes = now;
  e->last_used = ++tick_;
  --e->uses;
  // run_mu must drop before eviction: with uses now possibly 0 this entry
  // is a legal victim, and erasing it would destroy a held mutex. No new
  // waiter can appear meanwhile — finding the entry requires mu_.
  e->run_mu.unlock();
  evict_lru_locked();
}

void WarmStateCache::evict_lru_locked() {
  if (budget_ <= 0) return;
  while (bytes_ > budget_) {
    auto victim = map_.end();
    for (auto it = map_.begin(); it != map_.end(); ++it) {
      if (it->second->uses > 0) continue;
      if (victim == map_.end() ||
          it->second->last_used < victim->second->last_used) {
        victim = it;
      }
    }
    if (victim == map_.end()) return;  // everything live: over budget, stuck
    bytes_ -= victim->second->bytes;
    map_.erase(victim);
    ++evictions_;
  }
}

WarmStats WarmStateCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  WarmStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = map_.size();
  s.bytes = bytes_;
  return s;
}

}  // namespace rfn::serve
