#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <future>
#include <utility>

#include "util/metrics.hpp"

namespace rfn::serve {

Server::Server(ServerOptions opt)
    : opt_(std::move(opt)),
      warm_(opt_.warm_budget_bytes),
      queue_(opt_.admission) {
  if (opt_.workers < 1) opt_.workers = 1;
}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
  if (opt_.unix_socket.empty() && opt_.tcp_port < 0) {
    *error = "no listener configured (need a socket path or a TCP port)";
    return false;
  }
  exec_ = std::make_unique<Executor>(opt_.workers);
  if (!opt_.unix_socket.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opt_.unix_socket.size() >= sizeof(addr.sun_path)) {
      *error = "socket path too long: " + opt_.unix_socket;
      return false;
    }
    std::memcpy(addr.sun_path, opt_.unix_socket.c_str(),
                opt_.unix_socket.size() + 1);
    unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_fd_ < 0) {
      *error = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    ::unlink(opt_.unix_socket.c_str());
    if (::bind(unix_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
            0 ||
        ::listen(unix_fd_, 64) < 0) {
      *error = "cannot listen on " + opt_.unix_socket + ": " +
               std::strerror(errno);
      ::close(unix_fd_);
      unix_fd_ = -1;
      return false;
    }
  }
  if (opt_.tcp_port >= 0) {
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_fd_ < 0) {
      *error = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    int one = 1;
    ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(opt_.tcp_port));
    if (::bind(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
            0 ||
        ::listen(tcp_fd_, 64) < 0) {
      *error = "cannot listen on loopback port " +
               std::to_string(opt_.tcp_port) + ": " + std::strerror(errno);
      ::close(tcp_fd_);
      tcp_fd_ = -1;
      return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0) {
      tcp_port_ = ntohs(bound.sin_port);
    }
  }
  if (unix_fd_ >= 0) {
    accept_threads_.emplace_back([this] { accept_loop(unix_fd_); });
  }
  if (tcp_fd_ >= 0) {
    accept_threads_.emplace_back([this] { accept_loop(tcp_fd_); });
  }
  return true;
}

void Server::accept_loop(int listen_fd) {
  while (!stopping_.load()) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load() || (errno != EINTR && errno != ECONNABORTED)) {
        return;
      }
      continue;
    }
    reap_connections();
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    std::lock_guard<std::mutex> lk(conns_mu_);
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    conns_.push_back(conn);
    conn->thread = std::thread([this, conn] { connection_loop(conn); });
  }
}

void Server::reap_connections() {
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((*it)->done.load()) {
        finished.push_back(std::move((*it)->thread));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // done is the thread's last act, so these joins return immediately.
  for (std::thread& t : finished) {
    if (t.joinable()) t.join();
  }
}

void Server::connection_loop(std::shared_ptr<Conn> conn) {
  const int fd = conn->fd;
  std::string buf;
  char chunk[4096];
  bool drop = false;
  while (!drop) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buf.append(chunk, static_cast<size_t>(n));
    if (buf.size() > opt_.max_line_bytes && buf.find('\n') == std::string::npos) {
      write_line(*conn, api::VerifyResponse::reject("", "bad-request",
                                                    "request line too long")
                            .to_json()
                            .dump());
      break;
    }
    size_t start = 0;
    for (size_t nl = buf.find('\n', start); nl != std::string::npos;
         nl = buf.find('\n', start)) {
      std::string line = buf.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      std::string perr;
      json::Value doc = json::parse(line, &perr);
      if (doc.is_null()) {
        write_line(*conn, api::VerifyResponse::reject("", "bad-request",
                                                      "invalid JSON: " + perr)
                              .to_json()
                              .dump());
        continue;
      }
      handle_request(*conn, doc);
      if (stopping_.load()) {
        drop = true;  // a shutdown request ends the connection too
        break;
      }
    }
    buf.erase(0, start);
  }
  {
    std::lock_guard<std::mutex> lk(conn->mu);
    ::close(conn->fd);
    conn->fd = -1;
  }
  conn->done.store(true);
}

void Server::handle_request(Conn& conn, const json::Value& doc) {
  std::string id;
  if (const json::Value* v = doc.find("id"); v != nullptr && v->is_string()) {
    id = v->as_string();
  }
  std::string type;
  if (const json::Value* v = doc.find("type"); v != nullptr && v->is_string()) {
    type = v->as_string();
  }
  if (type == "ping" || type == "shutdown") {
    json::Value resp = json::Value::object();
    resp.set("type", "response");
    resp.set("version", api::kResponseVersion);
    if (!id.empty()) resp.set("id", id);
    resp.set("ok", true);
    write_line(conn, resp.dump());
    if (type == "shutdown") request_stop();
    return;
  }
  auto req = std::make_shared<api::VerifyRequest>();
  std::string err;
  if (!api::VerifyRequest::from_json(doc, req.get(), &err)) {
    write_line(conn,
               api::VerifyResponse::reject(id, "bad-request", err)
                   .to_json()
                   .dump());
    return;
  }
  // Admission runs on the DECLARED demands before the design is loaded:
  // parsing/elaborating up to 64 MB of inline design text is real CPU, and
  // a rejected request must cost microseconds, not an elaboration. The
  // admitted job loads on the worker ("load-failed" is written from
  // there). One drain token per admitted job; the connection thread blocks
  // on the job's completion — the NEXT line is read only after this
  // request's response went out, which keeps the record stream unambiguous.
  auto done = std::make_shared<std::promise<void>>();
  Job job;
  job.tenant = req->tenant;
  job.demand_ms =
      request_demand_ms(*req, opt_.admission.default_demand_ms);
  job.demand_mem_mb =
      req->options.budget_mem_mb > 0 ? req->options.budget_mem_mb : 0;
  job.demand_bdd_nodes =
      req->options.budget_bdd_nodes > 0 ? req->options.budget_bdd_nodes : 0;
  job.run = [this, &conn, req, done] {
    api::LoadedDesign design;
    std::string lerr;
    if (!api::load_design(req->design, &design, &lerr)) {
      write_line(conn,
                 api::VerifyResponse::reject(req->id, "load-failed", lerr)
                     .to_json()
                     .dump());
    } else {
      process(conn, *req, std::move(design));
    }
    done->set_value();
  };
  std::string reason, detail;
  if (!queue_.try_push(std::move(job), &reason, &detail)) {
    write_line(conn, api::VerifyResponse::reject(req->id, reason, detail)
                         .to_json()
                         .dump());
    return;
  }
  exec_->submit([this] {
    Job j;
    if (!queue_.pop_fairest(&j)) return;
    j.run();
    queue_.finish(j);
  });
  done->get_future().wait();
}

void Server::process(Conn& conn, const api::VerifyRequest& req,
                     api::LoadedDesign design) {
  api::WarmCacheInfo info;
  info.enabled = opt_.warm_enabled && req.session_workers == 0;
  WarmStateCache::Lease lease;
  const api::LoadedDesign* d = &design;
  ReuseCache* cache = nullptr;
  if (info.enabled) {
    lease = warm_.acquire(std::move(design));
    d = lease.design;
    cache = lease.cache;
    info.hit = lease.warm;
    info.order_warm = lease.order_warm;
    info.sat_pool_entries = lease.sat_pool_entries;
  }
  api::CallbackTraceSink sink(
      [this, &conn](const json::Value& rec) { write_line(conn, rec.dump()); });
  api::RunOutput out;
  std::string err;
  bool ok;
  {
    // Per-request metrics isolation: the whole run — executor workers,
    // portfolio jobs, and the watchdog included, via binding propagation —
    // records into a registry this request owns, so the batch summary's
    // metrics block is request-relative even with concurrent requests
    // in flight. Server-level metrics (queue, warm cache) are recorded
    // outside this scope and stay process-cumulative.
    MetricsRegistry request_metrics;
    MetricsScope scope(&request_metrics);
    ok = api::run_verify(*d, req, &sink, /*stream_properties=*/true, cache,
                         &out, &err);
  }
  if (info.enabled) warm_.release(lease);
  api::VerifyResponse resp;
  if (ok) {
    resp = std::move(out.response);
    WarmStats ws = warm_.stats();
    info.hits = ws.hits;
    info.misses = ws.misses;
    info.evictions = ws.evictions;
    info.entries = ws.entries;
    info.bytes = ws.bytes;
    resp.warm = info;
  } else {
    resp = api::VerifyResponse::reject(req.id, "bad-request", err);
  }
  // Counted before the response line goes out, so a client that has read
  // its response observes the request as served.
  served_.fetch_add(1);
  write_line(conn, resp.to_json().dump());
}

void Server::write_line(Conn& conn, const std::string& line) {
  std::lock_guard<std::mutex> lk(conn.mu);
  if (conn.fd < 0) return;
  std::string framed = line;
  framed.push_back('\n');
  size_t off = 0;
  while (off < framed.size()) {
    ssize_t n = ::send(conn.fd, framed.data() + off, framed.size() - off,
                       MSG_NOSIGNAL);
    if (n <= 0) return;  // peer gone; the job still finishes quietly
    off += static_cast<size_t>(n);
  }
}

void Server::request_stop() {
  stopping_.store(true);
  if (unix_fd_ >= 0) ::shutdown(unix_fd_, SHUT_RDWR);
  if (tcp_fd_ >= 0) ::shutdown(tcp_fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lk(stop_mu_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
}

void Server::wait() {
  std::unique_lock<std::mutex> lk(stop_mu_);
  stop_cv_.wait(lk, [this] { return stop_requested_ || stopped_; });
}

void Server::stop() {
  {
    std::lock_guard<std::mutex> lk(stop_mu_);
    if (stopped_) return;
    stopped_ = true;
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  stopping_.store(true);
  if (unix_fd_ >= 0) ::shutdown(unix_fd_, SHUT_RDWR);
  if (tcp_fd_ >= 0) ::shutdown(tcp_fd_, SHUT_RDWR);
  for (auto& t : accept_threads_) {
    if (t.joinable()) t.join();
  }
  accept_threads_.clear();
  std::vector<std::shared_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& c : conns) {
    std::lock_guard<std::mutex> lk(c->mu);
    if (c->fd >= 0) ::shutdown(c->fd, SHUT_RDWR);
  }
  // Joining a connection thread waits out its in-flight job (the executor
  // stays alive until the destructor), so no job outlives the server state
  // it touches. The accept loops are already joined, so no reaper races
  // these joins.
  for (auto& c : conns) {
    if (c->thread.joinable()) c->thread.join();
  }
  if (unix_fd_ >= 0) {
    ::close(unix_fd_);
    unix_fd_ = -1;
    ::unlink(opt_.unix_socket.c_str());
  }
  if (tcp_fd_ >= 0) {
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }
  exec_.reset();
}

}  // namespace rfn::serve
