#include "sim/sim64.hpp"

#include "netlist/analysis.hpp"

namespace rfn {

Sim64::Sim64(const Netlist& n) : n_(&n), vals_(n.size(), 0) {
  for (GateId g : topo_order(n))
    if (n.is_comb(g) || n.is_const(g)) order_.push_back(g);
}

void Sim64::set(GateId g, uint64_t word) {
  RFN_CHECK(n_->is_input(g) || n_->is_reg(g), "Sim64::set on gate %u", g);
  vals_[g] = word;
}

void Sim64::randomize_inputs(Rng& rng) {
  for (GateId i : n_->inputs()) vals_[i] = rng.next();
}

void Sim64::load_initial_state(Rng& rng) {
  for (GateId r : n_->regs()) {
    switch (n_->reg_init(r)) {
      case Tri::F: vals_[r] = 0; break;
      case Tri::T: vals_[r] = ~0ULL; break;
      case Tri::X: vals_[r] = rng.next(); break;
    }
  }
}

void Sim64::eval() {
  for (GateId g : order_) {
    const auto& fi = n_->fanins(g);
    uint64_t v = 0;
    switch (n_->type(g)) {
      case GateType::Const0: v = 0; break;
      case GateType::Const1: v = ~0ULL; break;
      case GateType::Buf: v = vals_[fi[0]]; break;
      case GateType::Not: v = ~vals_[fi[0]]; break;
      case GateType::And:
        v = ~0ULL;
        for (GateId f : fi) v &= vals_[f];
        break;
      case GateType::Or:
        v = 0;
        for (GateId f : fi) v |= vals_[f];
        break;
      case GateType::Nand:
        v = ~0ULL;
        for (GateId f : fi) v &= vals_[f];
        v = ~v;
        break;
      case GateType::Nor:
        v = 0;
        for (GateId f : fi) v |= vals_[f];
        v = ~v;
        break;
      case GateType::Xor: v = vals_[fi[0]] ^ vals_[fi[1]]; break;
      case GateType::Xnor: v = ~(vals_[fi[0]] ^ vals_[fi[1]]); break;
      case GateType::Mux: {
        const uint64_t s = vals_[fi[0]];
        v = (~s & vals_[fi[1]]) | (s & vals_[fi[2]]);
        break;
      }
      case GateType::Input:
      case GateType::Reg:
        continue;
    }
    vals_[g] = v;
  }
}

void Sim64::step() {
  std::vector<uint64_t> next;
  next.reserve(n_->regs().size());
  for (GateId r : n_->regs()) next.push_back(vals_[n_->reg_data(r)]);
  size_t i = 0;
  for (GateId r : n_->regs()) vals_[r] = next[i++];
}

}  // namespace rfn
