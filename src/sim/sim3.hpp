#pragma once
// Three-valued (0/1/X) levelized gate-level simulator.
//
// This is the "simulation engine" of the paper's title: Step 4 replays the
// abstract error trace on the full design with unassigned registers and
// inputs held at X, and registers whose simulated value conflicts with the
// trace become crucial-register candidates. X propagation is pessimistic for
// plain gates and optimistic for muxes (see eval_gate3), so a binary value
// produced under X inputs is guaranteed for every completion of the Xs.

#include <vector>

#include "netlist/netlist.hpp"
#include "util/cancel.hpp"

namespace rfn {

class Sim3 {
 public:
  explicit Sim3(const Netlist& n);

  const Netlist& netlist() const { return *n_; }

  /// Installs a cooperative should-stop hook (nullptr to clear). eval()
  /// polls it at gate-batch boundaries and returns early when cancelled;
  /// callers that install a token must check stopped() before trusting
  /// values. Used by the portfolio scheduler to cut long replays short.
  void set_should_stop(const CancelToken* token) { cancel_ = token; }
  /// True when the last eval() was cut short by the hook.
  bool stopped() const { return stopped_; }

  /// Sets the value of an input or a register output for the current cycle.
  void set(GateId g, Tri v);
  /// Applies every literal of the cube (signals must be inputs/registers).
  void set_cube(const Cube& c);
  /// Sets all primary inputs to X.
  void clear_inputs();
  /// Loads register initial values (X-init registers get X).
  void load_initial_state();

  /// Evaluates all combinational gates in topological order.
  void eval();

  Tri value(GateId g) const { return vals_[g]; }
  /// Reads the register state as a cube (X registers omitted).
  Cube state_cube() const;

  /// Advances one clock: every register takes the value of its data input
  /// (call after eval()).
  void step();

 private:
  const Netlist* n_;
  std::vector<GateId> order_;  // combinational gates only, topo order
  std::vector<Tri> vals_;
  const CancelToken* cancel_ = nullptr;
  bool stopped_ = false;
};

/// Replays `trace` (cubes over inputs/registers of `n`) from the initial
/// state and returns the value of `signal` at the final cycle after
/// evaluation. Unassigned inputs are X. Convenience for tests. A cancelled
/// replay (polled per cycle through `cancel`) returns Tri::X.
Tri simulate_trace(const Netlist& n, const Trace& trace, GateId signal,
                   const CancelToken* cancel = nullptr);

}  // namespace rfn
