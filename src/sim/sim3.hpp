#pragma once
// Three-valued (0/1/X) levelized gate-level simulator.
//
// This is the "simulation engine" of the paper's title: Step 4 replays the
// abstract error trace on the full design with unassigned registers and
// inputs held at X, and registers whose simulated value conflicts with the
// trace become crucial-register candidates. X propagation is pessimistic for
// plain gates and optimistic for muxes (see eval_gate3), so a binary value
// produced under X inputs is guaranteed for every completion of the Xs.

#include <vector>

#include "netlist/netlist.hpp"

namespace rfn {

class Sim3 {
 public:
  explicit Sim3(const Netlist& n);

  const Netlist& netlist() const { return *n_; }

  /// Sets the value of an input or a register output for the current cycle.
  void set(GateId g, Tri v);
  /// Applies every literal of the cube (signals must be inputs/registers).
  void set_cube(const Cube& c);
  /// Sets all primary inputs to X.
  void clear_inputs();
  /// Loads register initial values (X-init registers get X).
  void load_initial_state();

  /// Evaluates all combinational gates in topological order.
  void eval();

  Tri value(GateId g) const { return vals_[g]; }
  /// Reads the register state as a cube (X registers omitted).
  Cube state_cube() const;

  /// Advances one clock: every register takes the value of its data input
  /// (call after eval()).
  void step();

 private:
  const Netlist* n_;
  std::vector<GateId> order_;  // combinational gates only, topo order
  std::vector<Tri> vals_;
};

/// Replays `trace` (cubes over inputs/registers of `n`) from the initial
/// state and returns the value of `signal` at the final cycle after
/// evaluation. Unassigned inputs are X. Convenience for tests.
Tri simulate_trace(const Netlist& n, const Trace& trace, GateId signal);

}  // namespace rfn
