#include "sim/sim3.hpp"

#include "netlist/analysis.hpp"

namespace rfn {

Sim3::Sim3(const Netlist& n) : n_(&n), vals_(n.size(), Tri::X) {
  for (GateId g : topo_order(n))
    if (n.is_comb(g) || n.is_const(g)) order_.push_back(g);
}

void Sim3::set(GateId g, Tri v) {
  RFN_CHECK(n_->is_input(g) || n_->is_reg(g), "Sim3::set on gate %u (%s)", g,
            gate_type_name(n_->type(g)));
  vals_[g] = v;
}

void Sim3::set_cube(const Cube& c) {
  for (const Literal& lit : c) set(lit.signal, tri_of(lit.value));
}

void Sim3::clear_inputs() {
  for (GateId i : n_->inputs()) vals_[i] = Tri::X;
}

void Sim3::load_initial_state() {
  for (GateId r : n_->regs()) vals_[r] = n_->reg_init(r);
}

void Sim3::eval() {
  Tri buf[8];
  std::vector<Tri> wide;
  stopped_ = false;
  size_t batch = 0;
  for (GateId g : order_) {
    // Step-boundary poll every 1024 gates; cheap enough to leave in the
    // non-cancellable path (cancel_ is almost always null).
    if ((batch++ & 0x3FF) == 0 && should_stop(cancel_)) {
      stopped_ = true;
      return;
    }
    const auto& fi = n_->fanins(g);
    const Tri* vals;
    if (fi.size() <= 8) {
      for (size_t i = 0; i < fi.size(); ++i) buf[i] = vals_[fi[i]];
      vals = buf;
    } else {
      wide.clear();
      for (GateId f : fi) wide.push_back(vals_[f]);
      vals = wide.data();
    }
    vals_[g] = eval_gate3(n_->type(g), vals, fi.size());
  }
}

Cube Sim3::state_cube() const {
  Cube c;
  for (GateId r : n_->regs())
    if (vals_[r] != Tri::X) c.push_back({r, vals_[r] == Tri::T});
  return c;
}

void Sim3::step() {
  // Two-phase: read all data inputs first so register-to-register feed
  // chains latch the pre-edge values.
  std::vector<Tri> next;
  next.reserve(n_->regs().size());
  for (GateId r : n_->regs()) next.push_back(vals_[n_->reg_data(r)]);
  size_t i = 0;
  for (GateId r : n_->regs()) vals_[r] = next[i++];
}

Tri simulate_trace(const Netlist& n, const Trace& trace, GateId signal,
                   const CancelToken* cancel) {
  Sim3 sim(n);
  sim.set_should_stop(cancel);
  sim.load_initial_state();
  for (size_t cycle = 0; cycle < trace.steps.size(); ++cycle) {
    sim.clear_inputs();
    sim.set_cube(trace.steps[cycle].state);
    sim.set_cube(trace.steps[cycle].inputs);
    sim.eval();
    if (sim.stopped()) return Tri::X;
    if (cycle + 1 < trace.steps.size()) sim.step();
  }
  return sim.value(signal);
}

}  // namespace rfn
