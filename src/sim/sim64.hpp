#pragma once
// 64-way bit-parallel binary simulator.
//
// Used for randomized cross-checks (BDD vs simulation semantics, ATPG trace
// replay) and as a cheap reachability sampler in tests. Each uint64_t lane
// carries 64 independent simulation patterns.

#include <vector>

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace rfn {

class Sim64 {
 public:
  explicit Sim64(const Netlist& n);

  /// Sets the 64-pattern word of an input or register output.
  void set(GateId g, uint64_t word);
  /// Randomizes every primary input.
  void randomize_inputs(Rng& rng);
  /// Loads initial state; X-init registers are randomized per pattern.
  void load_initial_state(Rng& rng);

  void eval();
  uint64_t value(GateId g) const { return vals_[g]; }
  /// Value of `g` in pattern lane `k` (0..63).
  bool value_bit(GateId g, int k) const { return (vals_[g] >> k) & 1; }

  void step();

 private:
  const Netlist* n_;
  std::vector<GateId> order_;
  std::vector<uint64_t> vals_;
};

}  // namespace rfn
